// Package twod implements the two-dimensional pipeline of §3: the ordering
// exchanges of item pairs are single angles in [0, π/2]; the ray-sweeping
// algorithm 2DRAYSWEEP enumerates the sectors between consecutive exchange
// angles, queries the fairness oracle once per sector, and indexes the
// satisfactory angular intervals; the online algorithm 2DONLINE answers a
// query function by binary search over the interval endpoints.
package twod

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fairrank/internal/dataset"
	"fairrank/internal/fairness"
	"fairrank/internal/geom"
	"fairrank/internal/ranking"
)

// Exchange is the ordering exchange of items I and J: the angle of the
// unique ranking function scoring both equally (Eq. 2 of the paper, via the
// equivalent direct form tan θ = −Δx/Δy).
type Exchange struct {
	Theta float64
	I, J  int
}

// ExchangeAngles computes the ordering exchanges of every pair of items that
// do not dominate each other. Pairs where one item dominates the other never
// change relative order, and duplicate items never strictly swap, so neither
// contributes an exchange. The result is sorted by angle (ties by item pair,
// making the output a deterministic total order).
func ExchangeAngles(ds *dataset.Dataset) ([]Exchange, error) {
	return exchangeAngles(ds, 1)
}

// cmpExchange is the strict total order on exchanges: angle, then item pair.
func cmpExchange(a, b Exchange) int {
	switch {
	case a.Theta < b.Theta:
		return -1
	case a.Theta > b.Theta:
		return 1
	case a.I != b.I:
		return a.I - b.I
	default:
		return a.J - b.J
	}
}

// exchangeAngles is ExchangeAngles with the O(n²) pair enumeration and the
// sort spread over the given number of workers: rows of the pair triangle
// are split into chunks of roughly equal pair counts, each chunk is built
// and sorted concurrently, and the sorted chunks are merged pairwise. The
// comparator is a total order, so the result is identical for every worker
// count.
func exchangeAngles(ds *dataset.Dataset, workers int) ([]Exchange, error) {
	if ds.D() != 2 {
		return nil, fmt.Errorf("twod: dataset has %d scoring attributes, want 2", ds.D())
	}
	n := ds.N()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// Flat coordinate arrays keep the O(n²) inner loop free of slice-header
	// indirection; the dominance test is geom.Dominates inlined for d = 2 on
	// the pair deltas.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		it := ds.Item(i)
		xs[i], ys[i] = it[0], it[1]
	}
	const eps = geom.Eps
	buildRows := func(rowLo, rowHi int) []Exchange {
		pairs := 0
		for i := rowLo; i < rowHi; i++ {
			pairs += n - 1 - i
		}
		out := make([]Exchange, 0, pairs/3+16)
		for i := rowLo; i < rowHi; i++ {
			xi, yi := xs[i], ys[i]
			for j := i + 1; j < n; j++ {
				dx, dy := xi-xs[j], yi-ys[j]
				if dx >= -eps && dy >= -eps && (dx > eps || dy > eps) {
					continue // i dominates j
				}
				if dx <= eps && dy <= eps && (dx < -eps || dy < -eps) {
					continue // j dominates i
				}
				if math.Abs(dy) < eps {
					continue // equal items (dominance already filtered Δy=0, Δx≠0)
				}
				r := -dx / dy
				if r <= eps {
					continue // exchange outside (0, π/2): same order everywhere
				}
				out = append(out, Exchange{Theta: math.Atan(r), I: i, J: j})
			}
		}
		return out
	}
	if workers == 1 {
		out := buildRows(0, n)
		sortExchanges(out)
		return out, nil
	}
	// Row i contributes n−1−i pairs; hand each worker a contiguous row range
	// holding ~1/workers of the n(n−1)/2 total.
	chunks := make([][]Exchange, workers)
	var wg sync.WaitGroup
	rowLo := 0
	totalPairs := n * (n - 1) / 2
	for w := 0; w < workers; w++ {
		rowHi := rowLo
		if w == workers-1 {
			rowHi = n
		} else {
			target := totalPairs / workers
			for pairs := 0; rowHi < n && pairs < target; rowHi++ {
				pairs += n - 1 - rowHi
			}
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := buildRows(lo, hi)
			sortExchanges(c)
			chunks[w] = c
		}(w, rowLo, rowHi)
		rowLo = rowHi
	}
	wg.Wait()
	// Pairwise merge tree: log(workers) rounds, merges within a round run
	// concurrently.
	for len(chunks) > 1 {
		merged := make([][]Exchange, (len(chunks)+1)/2)
		var mg sync.WaitGroup
		for m := 0; m < len(chunks)/2; m++ {
			mg.Add(1)
			go func(m int) {
				defer mg.Done()
				merged[m] = mergeExchanges(chunks[2*m], chunks[2*m+1])
			}(m)
		}
		if len(chunks)%2 == 1 {
			merged[len(merged)-1] = chunks[len(chunks)-1]
		}
		mg.Wait()
		chunks = merged
	}
	return chunks[0], nil
}

// sortExchanges sorts into cmpExchange order. Large inputs use a stable LSD
// radix sort on the theta float bits (all thetas are positive, so their IEEE
// bit patterns order like the values): stability preserves the row-major
// enumeration order of buildRows within equal thetas, which is exactly the
// (I, J) tie-break — and the radix passes beat the comparison sort's
// Θ(E log E) comparator calls on the sweep's hottest input sizes.
func sortExchanges(ex []Exchange) {
	if len(ex) < 1<<14 {
		slices.SortFunc(ex, cmpExchange)
		return
	}
	src, dst := ex, make([]Exchange, len(ex))
	var counts [1 << 16]int32
	for shift := 0; shift < 64; shift += 16 {
		for i := range counts {
			counts[i] = 0
		}
		for k := range src {
			counts[(math.Float64bits(src[k].Theta)>>shift)&0xffff]++
		}
		var sum int32
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for k := range src {
			b := (math.Float64bits(src[k].Theta) >> shift) & 0xffff
			dst[counts[b]] = src[k]
			counts[b]++
		}
		src, dst = dst, src
	}
	// 64/16 = 4 passes: the sorted data landed back in ex.
}

// mergeExchanges merges two cmpExchange-sorted slices.
func mergeExchanges(a, b []Exchange) []Exchange {
	out := make([]Exchange, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmpExchange(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Interval is a satisfactory angular range [Start, End] ⊆ [0, π/2]: every
// ranking function with angle inside it produces a fair ordering.
type Interval struct {
	Start, End float64
}

// Contains reports whether theta lies in the closed interval.
func (iv Interval) Contains(theta float64) bool {
	return theta >= iv.Start-geom.Eps && theta <= iv.End+geom.Eps
}

// Index is the offline product of the 2D ray sweep: the sorted satisfactory
// intervals (the paper's list S of region borders) plus sweep statistics.
type Index struct {
	intervals []Interval
	// ExchangeCount is |Θ|, the number of ordering exchanges swept
	// (plotted on the left axis of Fig. 17).
	ExchangeCount int
	// OracleCalls is the number of fairness-oracle evaluations performed.
	OracleCalls int
	// Sectors is the number of angular sectors examined.
	Sectors int

	// Retained build state for incremental repair (see Repair): the sorted
	// exchange list the sweep ran over, the item count it was built for, and
	// the build options. In-memory only — persisted indexes drop it, so a
	// loaded index reports repairable == false and patches fall back to a
	// rebuild. PruneTopK builds also drop it: the candidate set is a global
	// property of the dataset that a delta can reshape arbitrarily.
	exchanges  []Exchange
	n          int
	buildOpts  Options
	repairable bool
}

// Options tunes RaySweep.
type Options struct {
	// Validate re-sorts the ordering from scratch inside every sector
	// instead of maintaining it incrementally by swaps. Quadratically
	// slower; used by tests to cross-check the incremental sweep.
	Validate bool
	// PruneTopK, when positive, drops ordering exchanges between pairs of
	// items that are both dominated by at least PruneTopK others — such
	// items never reach rank ≤ PruneTopK under any non-negative linear
	// function, so those exchanges cannot change a top-k oracle's verdict.
	// This is the §8 convex/dominance-layer optimization; it is exact for
	// oracles that inspect only the top-PruneTopK prefix and unsound for
	// oracles that look deeper.
	PruneTopK int
	// Workers splits [0, π/2] into that many contiguous sector segments
	// swept concurrently, each seeded with one full sort at its segment
	// start; satisfactory intervals are merged exactly at segment
	// boundaries, so the result is identical to the serial sweep for any
	// worker count. The only caveat is eps-degenerate data: a pair whose
	// exchange was filtered at the geom.Eps tolerance (near-duplicate
	// items, near-zero exchange angle) keeps its serial order everywhere,
	// while a segment seed re-sorts it by exact score — observable only
	// when scores differ by less than Eps and the pair straddles the
	// oracle's top-k boundary. 0 or 1 = serial; negative = GOMAXPROCS.
	Workers int
	// FullCheck forces a full Oracle.Check per sector instead of driving
	// the oracle's incremental state (fairness.Incremental) — the
	// pre-incremental behaviour, kept for benchmarks and equivalence tests.
	FullCheck bool
}

// resolveWorkers maps the Workers option to an effective worker count,
// clamped to the number of sectors so every segment is non-empty.
func resolveWorkers(workers, sectors int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > sectors {
		workers = sectors
	}
	return workers
}

// eventGroup is one distinct exchange angle: the half-open exchange index
// range [lo, hi) shares (numerically) the angle theta. Groups with hi−lo > 1
// are concurrent exchanges — three or more items meeting at one angle make
// the pairwise swap order ambiguous, so the sector past them is re-sorted
// from scratch.
type eventGroup struct {
	theta  float64
	lo, hi int
}

// tieTol groups exchanges at numerically identical angles; they must be
// applied together before the next sector is examined.
const tieTol = 1e-12

// groupEvents buckets the sorted exchanges into distinct-angle groups.
func groupEvents(exchanges []Exchange) []eventGroup {
	var events []eventGroup
	i := 0
	for i < len(exchanges) {
		theta := exchanges[i].Theta
		j := i
		for j < len(exchanges) && exchanges[j].Theta-theta <= tieTol {
			j++
		}
		events = append(events, eventGroup{theta: theta, lo: i, hi: j})
		i = j
	}
	return events
}

// RaySweep is Algorithm 1 (2DRAYSWEEP): it sweeps a ray from the x-axis
// (θ = 0) to the y-axis (θ = π/2), maintaining the induced ordering across
// ordering exchanges, evaluating the oracle once per sector, and merging
// consecutive satisfactory sectors into intervals.
//
// Each sector is one logical oracle call, but the call is O(1) amortized
// when the oracle supports fairness.Incremental (TopK and its combinators):
// consecutive sectors differ by a single swap, so the verdict state is
// updated instead of recomputed. Options.Workers additionally sweeps
// disjoint sector segments concurrently; the output is identical for every
// worker count up to the eps-degeneracy caveat on Options.Workers.
// segmentsPerWorker is the parallel sweep's oversplit factor: each worker's
// sector share is cut into this many queue segments so dense segments are
// stolen by idle workers. Each extra segment costs one extra full-sort seed.
const segmentsPerWorker = 4

func RaySweep(ds *dataset.Dataset, oracle fairness.Oracle, opt Options) (*Index, error) {
	exchanges, err := exchangeAngles(ds, resolveWorkers(opt.Workers, ds.N()))
	if err != nil {
		return nil, err
	}
	if opt.PruneTopK > 0 {
		candidate := make([]bool, ds.N())
		for _, i := range ds.TopKCandidates(opt.PruneTopK) {
			candidate[i] = true
		}
		kept := exchanges[:0]
		for _, e := range exchanges {
			if candidate[e.I] || candidate[e.J] {
				kept = append(kept, e)
			}
		}
		exchanges = kept
	}
	idx, err := sweepIndex(ds, oracle, exchanges, opt)
	if err != nil {
		return nil, err
	}
	if opt.PruneTopK == 0 {
		idx.exchanges = exchanges
		idx.n = ds.N()
		idx.buildOpts = opt
		idx.repairable = true
	}
	return idx, nil
}

// sweepIndex is the sweep stage of RaySweep: it takes an already-sorted
// exchange list (cmpExchange order) and runs the sector sweep over it,
// serial or segmented. Split out so Repair can re-enter the pipeline with a
// merged exchange list instead of a freshly enumerated one.
func sweepIndex(ds *dataset.Dataset, oracle fairness.Oracle, exchanges []Exchange, opt Options) (*Index, error) {
	counter := &fairness.Counter{O: oracle}
	events := groupEvents(exchanges)
	sectors := len(events) + 1
	idx := &Index{ExchangeCount: len(exchanges), Sectors: sectors}

	workers := resolveWorkers(opt.Workers, sectors)
	if workers == 1 {
		intervals, err := sweepSegment(ds, counter, exchanges, events, 0, sectors, opt)
		if err != nil {
			return nil, err
		}
		idx.intervals = intervals
		idx.OracleCalls = counter.Calls()
		return idx, nil
	}

	// Parallel segmented sweep: contiguous sector ranges, one full sort to
	// seed each, exact interval merge at the segment boundaries.
	// Work stealing: sectors are split into more segments than workers and
	// handed out through a shared queue, so a worker whose segments happen to
	// be dense (many oracle calls, big tie groups) simply claims fewer and
	// the others don't idle behind it. The oversplit factor trades one extra
	// full-sort seed per extra segment against tail latency; 4 segments per
	// worker keeps the seed overhead a few percent while capping the
	// straggler at ~a quarter of a worker's share. Results are unchanged:
	// segments are still contiguous sector ranges merged in order.
	numSegs := workers * segmentsPerWorker
	if numSegs > sectors {
		numSegs = sectors
	}
	parts := make([][]Interval, numSegs)
	errs := make([]error, numSegs)
	var nextSeg atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seg := int(nextSeg.Add(1)) - 1
				if seg >= numSegs {
					return
				}
				secLo := seg * sectors / numSegs
				secHi := (seg + 1) * sectors / numSegs
				parts[seg], errs[seg] = sweepSegment(ds, counter, exchanges, events, secLo, secHi, opt)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var intervals []Interval
	for _, part := range parts {
		for _, iv := range part {
			// A satisfactory run crossing a segment boundary arrives as two
			// intervals sharing the boundary angle exactly (both take it
			// from the same eventGroup); merge them.
			if k := len(intervals) - 1; k >= 0 && intervals[k].End == iv.Start {
				intervals[k].End = iv.End
				continue
			}
			intervals = append(intervals, iv)
		}
	}
	idx.intervals = intervals
	idx.OracleCalls = counter.Calls()
	return idx, nil
}

// sweepSegment sweeps the contiguous sector range [secLo, secHi). Sector s
// spans (events[s−1].theta, events[s].theta), with θ = 0 before the first
// event and θ = π/2 after the last. The first sector's ordering is seeded by
// a full sort (or, for sector 0, the exact limit ordering at θ → 0+); every
// following sector is reached by applying its event's swaps to the mutable
// order and to the oracle's incremental state.
func sweepSegment(ds *dataset.Dataset, counter *fairness.Counter, exchanges []Exchange, events []eventGroup, secLo, secHi int, opt Options) ([]Interval, error) {
	startAngle := func(s int) float64 {
		if s == 0 {
			return 0
		}
		return events[s-1].theta
	}
	endAngle := func(s int) float64 {
		if s == len(events) {
			return math.Pi / 2
		}
		return events[s].theta
	}

	var bufs ranking.Buffers
	var mo *ranking.MutableOrder
	if !opt.Validate {
		if secLo == 0 {
			// Initial ordering at θ → 0+: x descending, ties by y
			// descending (the limit ordering just off the axis), then index
			// for determinism.
			init := make([]int, ds.N())
			for i := range init {
				init[i] = i
			}
			slices.SortFunc(init, func(a, b int) int {
				ia, ib := ds.Item(a), ds.Item(b)
				switch {
				case ia[0] > ib[0]:
					return -1
				case ia[0] < ib[0]:
					return 1
				case ia[1] > ib[1]:
					return -1
				case ia[1] < ib[1]:
					return 1
				default:
					return a - b
				}
			})
			mo = ranking.NewMutableOrder(init)
		} else {
			mid := (startAngle(secLo) + endAngle(secLo)) / 2
			order, err := bufs.Order(ds, geom.Vector{math.Cos(mid), math.Sin(mid)})
			if err != nil {
				return nil, err
			}
			mo = ranking.NewMutableOrder(order)
		}
	}

	var inc fairness.Incremental
	if !opt.Validate && !opt.FullCheck {
		inc = fairness.NewIncremental(counter)
		inc.Begin(mo.Order())
	}

	var meet meetScratch
	var intervals []Interval
	var curStart float64
	inSat := false
	for s := secLo; s < secHi; s++ {
		var sat bool
		switch {
		case opt.Validate:
			mid := (startAngle(s) + endAngle(s)) / 2
			order, err := bufs.Order(ds, geom.Vector{math.Cos(mid), math.Sin(mid)})
			if err != nil {
				return nil, err
			}
			sat = counter.Check(order)
		case opt.FullCheck:
			sat = counter.Check(mo.Order())
		default:
			sat = inc.Valid()
		}
		if sat {
			if !inSat {
				inSat = true
				curStart = startAngle(s)
			}
		} else if inSat {
			inSat = false
			intervals = append(intervals, Interval{Start: curStart, End: startAngle(s)})
		}
		if s+1 >= secHi || s >= len(events) || opt.Validate {
			continue // last sector of the segment (or re-sorting anyway)
		}
		ev := events[s]
		if ev.hi-ev.lo == 1 {
			posA, posB := mo.Swap(exchanges[ev.lo].I, exchanges[ev.lo].J)
			if inc != nil {
				inc.Swap(posA, posB)
			}
			continue
		}
		// Concurrent exchanges: resolve the meet exactly — only the items
		// meeting at this angle move, re-sorting among the ranks they
		// already occupy by their score just past the boundary.
		mid := (startAngle(s+1) + endAngle(s+1)) / 2
		meet.apply(ds, mo, inc, exchanges[ev.lo:ev.hi], mid)
	}
	if inSat {
		intervals = append(intervals, Interval{Start: curStart, End: endAngle(secHi - 1)})
	}
	return intervals, nil
}

// meetScratch holds reusable buffers for resolving concurrent-exchange
// groups (three or more items meeting at one angle).
type meetScratch struct {
	seen    []bool
	members []meetMember
	ranks   []int
}

type meetMember struct {
	item  int
	score float64
}

// apply resolves one concurrent-exchange group: every item involved in the
// group ties with its exchange partners exactly at the boundary angle, so
// just past it the members re-sort among the ranks they already occupy,
// ordered by score at mid (ties — identical items — keep ascending-index
// order, matching ranking.Order). Items not in the group cannot cross any
// member inside the group's angle window (such a crossing would itself be an
// exchange in the group), so their ranks are untouched. O(c log c) for a
// c-item meet instead of an O(n log n) re-sort of the whole dataset.
func (sc *meetScratch) apply(ds *dataset.Dataset, mo *ranking.MutableOrder, inc fairness.Incremental, group []Exchange, mid float64) {
	if sc.seen == nil {
		sc.seen = make([]bool, ds.N())
	}
	w := geom.Vector{math.Cos(mid), math.Sin(mid)}
	sc.members = sc.members[:0]
	for _, e := range group {
		if !sc.seen[e.I] {
			sc.seen[e.I] = true
			sc.members = append(sc.members, meetMember{item: e.I, score: w.Dot(ds.Item(e.I))})
		}
		if !sc.seen[e.J] {
			sc.seen[e.J] = true
			sc.members = append(sc.members, meetMember{item: e.J, score: w.Dot(ds.Item(e.J))})
		}
	}
	sc.ranks = sc.ranks[:0]
	for _, m := range sc.members {
		sc.seen[m.item] = false
		sc.ranks = append(sc.ranks, mo.Rank(m.item))
	}
	slices.Sort(sc.ranks)
	slices.SortFunc(sc.members, func(a, b meetMember) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		default:
			return a.item - b.item
		}
	})
	order := mo.Order()
	for i, m := range sc.members {
		if cur := order[sc.ranks[i]]; cur != m.item {
			posA, posB := mo.Swap(m.item, cur)
			if inc != nil {
				inc.Swap(posA, posB)
			}
		}
	}
}

// Intervals returns the satisfactory intervals in ascending order (shared
// slice; treat as read-only).
func (idx *Index) Intervals() []Interval { return idx.intervals }

// Satisfiable reports whether any satisfactory function exists.
func (idx *Index) Satisfiable() bool { return len(idx.intervals) > 0 }

// ErrUnsatisfiable is returned by Query when no linear function satisfies
// the oracle anywhere in [0, π/2].
var ErrUnsatisfiable = errors.New("twod: no satisfactory ranking function exists")

// Query is Algorithm 2 (2DONLINE): given a query weight vector it returns
// the closest satisfactory weight vector by binary search over the interval
// endpoints — the query itself when it is already satisfactory, otherwise
// the nearest interval border, preserving the query's magnitude r.
func (idx *Index) Query(w geom.Vector) (geom.Vector, float64, error) {
	if len(w) != 2 {
		return nil, 0, fmt.Errorf("twod: query weight vector has dimension %d, want 2", len(w))
	}
	r, theta, err := geom.ToPolar2D(w)
	if err != nil {
		return nil, 0, err
	}
	bestTheta, best, err := idx.QueryAngle(theta)
	if err != nil {
		return nil, 0, err
	}
	if best == 0 {
		return w.Clone(), 0, nil
	}
	return geom.Vector{r * math.Cos(bestTheta), r * math.Sin(bestTheta)}, best, nil
}

// QueryAngle is Query on the polar form: given the query's angle it returns
// the closest satisfactory angle and the angular distance (0 when theta is
// already satisfactory). It performs no allocations, which is what the
// SuggestBatch fast path amortizes per-call overhead down to.
func (idx *Index) QueryAngle(theta float64) (float64, float64, error) {
	if !idx.Satisfiable() {
		return 0, 0, ErrUnsatisfiable
	}
	bestTheta, best := idx.answerNear(idx.lowerBound(theta), theta)
	return bestTheta, best, nil
}

// lowerBound returns the index of the first interval with End ≥ theta —
// the one candidate position an angular query needs (its neighbor below is
// the only other interval that can be closer). The result is a pure function
// of theta, which is what lets the resumable kernel substitute a validated
// cursor for the binary search without changing any answer.
func (idx *Index) lowerBound(theta float64) int {
	lo, hi := 0, len(idx.intervals)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx.intervals[mid].End < theta {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// queryAngleFrom is QueryAngle with a cursor: cur is the previous query's
// lower bound, and it substitutes for the binary search exactly when it is
// already a valid lower bound for theta too (cur == 0 or the interval below
// it ends before theta) — true whenever consecutive queries arrive in
// ascending angular order, which is what the batch planner's locality sort
// arranges. The returned position is identical to lowerBound(theta) either
// way, so answers never depend on the cursor; resumed reports whether the
// cursor carried.
func (idx *Index) queryAngleFrom(theta float64, cur int) (bestTheta, dist float64, next int, resumed bool, err error) {
	if !idx.Satisfiable() {
		return 0, 0, 0, false, ErrUnsatisfiable
	}
	n := len(idx.intervals)
	lo := cur
	resumed = cur >= 0 && cur <= n && (cur == 0 || idx.intervals[cur-1].End < theta)
	if resumed {
		// Clustered queries land in or just past the cursor's interval: a
		// short walk finds the bound; a long jump falls back to binary
		// search over the remaining suffix (same result, bounded cost).
		const walkLimit = 8
		for steps := 0; lo < n && idx.intervals[lo].End < theta; steps++ {
			if steps == walkLimit {
				lo += idx.suffixLowerBound(lo, theta)
				break
			}
			lo++
		}
	} else {
		lo = idx.lowerBound(theta)
	}
	bestTheta, dist = idx.answerNear(lo, theta)
	return bestTheta, dist, lo, resumed, nil
}

// suffixLowerBound is lowerBound restricted to intervals[from:], returning
// the offset from from.
func (idx *Index) suffixLowerBound(from int, theta float64) int {
	lo, hi := 0, len(idx.intervals)-from
	for lo < hi {
		mid := (lo + hi) / 2
		if idx.intervals[from+mid].End < theta {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// answerNear turns a lower-bound position into the query answer: the closest
// satisfactory angle to theta and its distance (0 when theta itself lies in a
// satisfactory interval).
func (idx *Index) answerNear(lo int, theta float64) (float64, float64) {
	best := math.Inf(1)
	bestTheta := theta
	consider := func(iv Interval) {
		if iv.Contains(theta) {
			best, bestTheta = 0, theta
			return
		}
		// Interval borders are ordering exchanges: exactly on one, two
		// items tie and the tie-break may fall on the unfair side. Return
		// a point nudged strictly inside the interval instead.
		nudge := math.Min(1e-7, (iv.End-iv.Start)/1000)
		for _, edge := range [2]struct{ pos, inner float64 }{
			{iv.Start, iv.Start + nudge},
			{iv.End, iv.End - nudge},
		} {
			if d := math.Abs(edge.pos - theta); d < best {
				best, bestTheta = d, edge.inner
			}
		}
	}
	if lo < len(idx.intervals) {
		consider(idx.intervals[lo])
	}
	if lo > 0 {
		consider(idx.intervals[lo-1])
	}
	return bestTheta, best
}
