package twod

import (
	"math"
	"math/rand"
	"testing"

	"fairrank/internal/dataset"
	"fairrank/internal/fairness"
	"fairrank/internal/geom"
	"fairrank/internal/ranking"
)

func mustDS(t *testing.T, rows [][]float64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.New([]string{"x", "y"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestExchangeAnglesPaperFigure2(t *testing.T) {
	// t1⟨1,2⟩ and t2⟨2,1⟩ exchange at exactly π/4 (Figure 2 of the paper).
	ds := mustDS(t, [][]float64{{1, 2}, {2, 1}})
	ex, err := ExchangeAngles(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 1 {
		t.Fatalf("exchanges = %v", ex)
	}
	if math.Abs(ex[0].Theta-math.Pi/4) > 1e-12 {
		t.Errorf("theta = %v, want π/4", ex[0].Theta)
	}
}

func TestExchangeAnglesDominatedPairsSkipped(t *testing.T) {
	ds := mustDS(t, [][]float64{{2, 2}, {1, 1}, {3, 0.5}})
	ex, err := ExchangeAngles(ds)
	if err != nil {
		t.Fatal(err)
	}
	// (0,1): 0 dominates 1 → skipped. (0,2) and (1,2) are incomparable.
	if len(ex) != 2 {
		t.Fatalf("exchanges = %v, want 2", ex)
	}
}

func TestExchangeAnglesDuplicates(t *testing.T) {
	ds := mustDS(t, [][]float64{{1, 1}, {1, 1}})
	ex, err := ExchangeAngles(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 0 {
		t.Errorf("duplicate items should have no exchange: %v", ex)
	}
}

func TestExchangeAnglesWrongDimension(t *testing.T) {
	ds, _ := dataset.New([]string{"a", "b", "c"}, [][]float64{{1, 2, 3}})
	if _, err := ExchangeAngles(ds); err == nil {
		t.Error("expected dimension error")
	}
}

// Property: at angles slightly below and above each exchange, the pair's
// relative order flips.
func TestExchangeFlipsOrder(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 50; iter++ {
		rows := make([][]float64, 8)
		for i := range rows {
			rows[i] = []float64{r.Float64() * 10, r.Float64() * 10}
		}
		ds := mustDS(t, rows)
		ex, err := ExchangeAngles(ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ex {
			const h = 1e-6
			lo := geom.Vector{math.Cos(e.Theta - h), math.Sin(e.Theta - h)}
			hi := geom.Vector{math.Cos(e.Theta + h), math.Sin(e.Theta + h)}
			si := ds.Item(e.I)
			sj := ds.Item(e.J)
			before := lo.Dot(si) - lo.Dot(sj)
			after := hi.Dot(si) - hi.Dot(sj)
			if before*after > 0 {
				t.Fatalf("iter %d: pair (%d,%d) does not flip at %v: %v vs %v",
					iter, e.I, e.J, e.Theta, before, after)
			}
		}
	}
}

// topBlueOracle accepts orderings whose top-k contains at most maxBlue items
// with color index 0.
func topBlueOracle(ds *dataset.Dataset, k, maxBlue int, t *testing.T) fairness.Oracle {
	t.Helper()
	o, err := fairness.NewTopK(ds, "color", k, []fairness.GroupBound{{Group: "blue", Min: -1, Max: maxBlue}})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRaySweepAlwaysSatisfied(t *testing.T) {
	ds := mustDS(t, [][]float64{{1, 3.5}, {1.5, 3.1}, {1.91, 2.3}, {2.3, 1.8}, {3.2, 0.9}})
	idx, err := RaySweep(ds, fairness.Func(func([]int) bool { return true }), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivs := idx.Intervals()
	if len(ivs) != 1 || ivs[0].Start != 0 || math.Abs(ivs[0].End-math.Pi/2) > 1e-12 {
		t.Fatalf("intervals = %v, want [0, π/2]", ivs)
	}
	if !idx.Satisfiable() {
		t.Error("should be satisfiable")
	}
}

func TestRaySweepNeverSatisfied(t *testing.T) {
	ds := mustDS(t, [][]float64{{1, 3.5}, {3.2, 0.9}})
	idx, err := RaySweep(ds, fairness.Func(func([]int) bool { return false }), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Satisfiable() {
		t.Error("should be unsatisfiable")
	}
	if _, _, err := idx.Query(geom.Vector{1, 1}); err != ErrUnsatisfiable {
		t.Errorf("want ErrUnsatisfiable, got %v", err)
	}
}

// brute-force reference: sample many angles, evaluate the oracle directly.
func bruteSatisfied(t *testing.T, ds *dataset.Dataset, oracle fairness.Oracle, theta float64) bool {
	t.Helper()
	w := geom.Vector{math.Cos(theta), math.Sin(theta)}
	order, err := ranking.Order(ds, w)
	if err != nil {
		t.Fatal(err)
	}
	return oracle.Check(order)
}

// randomColoredDS builds a random dataset with a binary color attribute.
func randomColoredDS(t *testing.T, r *rand.Rand, n int) *dataset.Dataset {
	t.Helper()
	rows := make([][]float64, n)
	colors := make([]int, n)
	for i := range rows {
		rows[i] = []float64{r.Float64() * 10, r.Float64() * 10}
		colors[i] = r.Intn(2)
	}
	ds := mustDS(t, rows)
	if err := ds.AddTypeAttr("color", []string{"blue", "orange"}, colors); err != nil {
		t.Fatal(err)
	}
	return ds
}

// Property: the interval index agrees with direct oracle evaluation at a
// dense sample of angles (excluding points within tolerance of a boundary).
func TestRaySweepAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for iter := 0; iter < 25; iter++ {
		n := 6 + r.Intn(10)
		ds := randomColoredDS(t, r, n)
		k := 2 + r.Intn(3)
		maxBlue := r.Intn(k + 1)
		oracle := topBlueOracle(ds, k, maxBlue, t)
		idx, err := RaySweep(ds, oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		exchanges, _ := ExchangeAngles(ds)
		const samples = 400
		for s := 0; s <= samples; s++ {
			theta := float64(s) * math.Pi / 2 / samples
			// Skip samples too close to an exchange (ordering ambiguous).
			tooClose := false
			for _, e := range exchanges {
				if math.Abs(e.Theta-theta) < 1e-4 {
					tooClose = true
					break
				}
			}
			if tooClose {
				continue
			}
			want := bruteSatisfied(t, ds, oracle, theta)
			got := false
			for _, iv := range idx.Intervals() {
				if iv.Contains(theta) {
					got = true
					break
				}
			}
			if got != want {
				t.Fatalf("iter %d: disagreement at θ=%v: index=%v oracle=%v (intervals %v)",
					iter, theta, got, want, idx.Intervals())
			}
		}
	}
}

// Property: incremental sweep and validate-mode sweep produce identical
// interval structures.
func TestRaySweepValidateModeAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for iter := 0; iter < 20; iter++ {
		ds := randomColoredDS(t, r, 6+r.Intn(12))
		oracle := topBlueOracle(ds, 3, 1, t)
		fast, err := RaySweep(ds, oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := RaySweep(ds, oracle, Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		fi, si := fast.Intervals(), slow.Intervals()
		if len(fi) != len(si) {
			t.Fatalf("iter %d: interval count %d vs %d\nfast %v\nslow %v", iter, len(fi), len(si), fi, si)
		}
		for k := range fi {
			if math.Abs(fi[k].Start-si[k].Start) > 1e-9 || math.Abs(fi[k].End-si[k].End) > 1e-9 {
				t.Fatalf("iter %d: interval %d differs: %v vs %v", iter, k, fi[k], si[k])
			}
		}
	}
}

func TestQuerySatisfactoryInputReturned(t *testing.T) {
	ds := randomColoredDS(t, rand.New(rand.NewSource(15)), 10)
	idx, err := RaySweep(ds, fairness.Func(func([]int) bool { return true }), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := geom.Vector{0.3, 0.7}
	got, dist, err := idx.Query(w)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 0 || got[0] != 0.3 || got[1] != 0.7 {
		t.Errorf("satisfactory query modified: %v dist %v", got, dist)
	}
}

func TestQueryReturnsNearestBoundary(t *testing.T) {
	// Hand-built index: satisfactory only on [0.5, 0.7] ∪ [1.2, 1.3].
	idx := &Index{intervals: []Interval{{0.5, 0.7}, {1.2, 1.3}}}
	cases := []struct {
		theta float64
		want  float64
	}{
		{0.6, 0.6},   // inside first
		{0.1, 0.5},   // below first
		{0.9, 0.7},   // between, closer to 0.7
		{1.1, 1.2},   // between, closer to 1.2
		{1.5, 1.3},   // above last
		{1.25, 1.25}, // inside second
	}
	for _, c := range cases {
		w := geom.Vector{math.Cos(c.theta), math.Sin(c.theta)}
		got, dist, err := idx.Query(w)
		if err != nil {
			t.Fatal(err)
		}
		// Boundary answers are nudged ≤1e-7 inside the interval, so allow
		// that much slack.
		_, a, _ := geom.ToPolar(got)
		if math.Abs(a[0]-c.want) > 2e-7 {
			t.Errorf("Query(θ=%v) → θ=%v, want %v", c.theta, a[0], c.want)
		}
		if math.Abs(dist-math.Abs(c.theta-c.want)) > 2e-7 {
			t.Errorf("Query(θ=%v) dist = %v, want %v", c.theta, dist, math.Abs(c.theta-c.want))
		}
	}
}

func TestQueryPreservesMagnitude(t *testing.T) {
	idx := &Index{intervals: []Interval{{0.5, 0.7}}}
	w := geom.Vector{5 * math.Cos(0.1), 5 * math.Sin(0.1)}
	got, _, err := idx.Query(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Norm()-5) > 1e-9 {
		t.Errorf("magnitude not preserved: |w'| = %v", got.Norm())
	}
}

func TestQueryInvalidInput(t *testing.T) {
	idx := &Index{intervals: []Interval{{0.5, 0.7}}}
	if _, _, err := idx.Query(geom.Vector{1, 2, 3}); err == nil {
		t.Error("expected dimension error")
	}
	if _, _, err := idx.Query(geom.Vector{0, 0}); err == nil {
		t.Error("expected zero-vector error")
	}
	if _, _, err := idx.Query(geom.Vector{-1, 1}); err == nil {
		t.Error("expected negative-weight error")
	}
}

// Property: the returned function is always satisfactory per the oracle, and
// no sampled angle closer to the query is satisfactory.
func TestQueryOptimalityAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for iter := 0; iter < 15; iter++ {
		ds := randomColoredDS(t, r, 12)
		oracle := topBlueOracle(ds, 4, 1, t)
		idx, err := RaySweep(ds, oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !idx.Satisfiable() {
			continue
		}
		for q := 0; q < 20; q++ {
			theta := r.Float64() * math.Pi / 2
			w := geom.Vector{math.Cos(theta), math.Sin(theta)}
			got, dist, err := idx.Query(w)
			if err != nil {
				t.Fatal(err)
			}
			// Check the result is satisfactory (nudge inward if on boundary).
			_, a, _ := geom.ToPolar(got)
			thGot := a[0]
			satisfied := false
			for _, nudge := range []float64{0, 1e-7, -1e-7} {
				if bruteSatisfied(t, ds, oracle, clampAngle(thGot+nudge)) {
					satisfied = true
					break
				}
			}
			if !satisfied {
				t.Fatalf("iter %d: returned function θ=%v not satisfactory", iter, thGot)
			}
			// No sampled angle closer to the query may be satisfactory.
			const samples = 300
			for s := 0; s <= samples; s++ {
				th := float64(s) * math.Pi / 2 / samples
				if math.Abs(th-theta) < dist-1e-3 && bruteSatisfied(t, ds, oracle, th) {
					// Tolerate boundary effects within 1e-3.
					t.Fatalf("iter %d: angle %v closer than %v is satisfactory (query θ=%v)",
						iter, th, dist, theta)
				}
			}
		}
	}
}

func clampAngle(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > math.Pi/2 {
		return math.Pi / 2
	}
	return x
}

// Property: PruneTopK leaves the satisfactory intervals of a top-k oracle
// unchanged while tracking no more exchanges.
func TestRaySweepPruneTopKExact(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 15; iter++ {
		ds := randomColoredDS(t, r, 20)
		k := 4
		oracle := topBlueOracle(ds, k, 2, t)
		full, err := RaySweep(ds, oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := RaySweep(ds, oracle, Options{PruneTopK: k})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.ExchangeCount > full.ExchangeCount {
			t.Fatalf("iter %d: pruning increased exchanges %d > %d",
				iter, pruned.ExchangeCount, full.ExchangeCount)
		}
		fi, pi := full.Intervals(), pruned.Intervals()
		if len(fi) != len(pi) {
			t.Fatalf("iter %d: interval counts differ: %v vs %v", iter, fi, pi)
		}
		for j := range fi {
			if math.Abs(fi[j].Start-pi[j].Start) > 1e-9 || math.Abs(fi[j].End-pi[j].End) > 1e-9 {
				t.Fatalf("iter %d: interval %d differs: %v vs %v", iter, j, fi[j], pi[j])
			}
		}
	}
}

func TestRaySweepStatistics(t *testing.T) {
	ds := mustDS(t, [][]float64{{1, 3.5}, {1.5, 3.1}, {1.91, 2.3}, {2.3, 1.8}, {3.2, 0.9}})
	idx, err := RaySweep(ds, fairness.Func(func([]int) bool { return true }), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's five points form an antichain: all C(5,2)=10 pairs exchange.
	if idx.ExchangeCount != 10 {
		t.Errorf("ExchangeCount = %d, want 10", idx.ExchangeCount)
	}
	if idx.Sectors != 11 {
		t.Errorf("Sectors = %d, want 11", idx.Sectors)
	}
	if idx.OracleCalls != idx.Sectors {
		t.Errorf("OracleCalls = %d, want %d", idx.OracleCalls, idx.Sectors)
	}
}
