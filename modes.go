package fairrank

import (
	"fmt"
	"io"

	"fairrank/internal/cells"
	"fairrank/internal/core"
	"fairrank/internal/engine"
	"fairrank/internal/twod"
)

// This file is the one place engine-mode dispatch lives. Everything above it
// — the Designer's query methods, the batch fan-out, persistence, the
// serving registry and the HTTP API — talks to engine.Engine and never
// branches on Mode; adding an engine means adding a case to the two
// constructors below and nothing else.

// buildEngine runs a concrete mode's offline phase over the dataset and
// wraps the resulting index in its engine adapter.
func buildEngine(mode Mode, ds *Dataset, oracle Oracle, cfg Config) (engine.Engine, error) {
	switch mode {
	case Mode2D:
		if ds.D() != 2 {
			return nil, fmt.Errorf("fairrank: Mode2D requires 2 scoring attributes, dataset has %d", ds.D())
		}
		idx, err := twod.RaySweep(ds, oracle, twod.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		return twod.NewEngine(idx), nil
	case ModeExact:
		idx, err := core.SatRegions(ds, oracle, core.Options{
			UseTree:        !cfg.DisableArrangementTree,
			MaxHyperplanes: cfg.MaxHyperplanes,
			Seed:           cfg.Seed,
			PruneTopK:      cfg.PruneTopK,
			Workers:        cfg.Workers,
			// Adjacency-ordered incremental labeling is exact in 2D, where
			// angle-space hyperplanes coincide with the exchange angles.
			IncrementalLabeling: ds.D() == 2,
		})
		if err != nil {
			return nil, err
		}
		return core.NewEngine(idx), nil
	case ModeApprox:
		n := cfg.Cells
		if n <= 0 {
			n = 10000
		}
		cap := cfg.CellRegionCap
		switch {
		case cap == 0:
			cap = 512
		case cap < 0:
			cap = 0 // unlimited
		}
		idx, err := cells.Preprocess(ds, oracle, n, cells.Options{
			Seed:              cfg.Seed,
			PruneTopK:         cfg.PruneTopK,
			MaxHyperplanes:    cfg.MaxHyperplanes,
			MaxRegionsPerCell: cap,
			Workers:           cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		return cells.NewEngine(idx, cfg.RefineQueries), nil
	default:
		return nil, fmt.Errorf("fairrank: unknown mode %v", mode)
	}
}

// loadEngine reconstructs a mode's engine adapter from a persisted index
// payload (the universal header has already been read and validated).
func loadEngine(mode Mode, r io.Reader, ds *Dataset, oracle Oracle, refine bool) (engine.Engine, error) {
	switch mode {
	case Mode2D:
		idx, err := twod.LoadIndex(r)
		if err != nil {
			return nil, err
		}
		return twod.NewEngine(idx), nil
	case ModeExact:
		idx, err := core.LoadIndex(r, ds, oracle)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(idx), nil
	case ModeApprox:
		idx, err := cells.LoadIndex(r, ds, oracle)
		if err != nil {
			return nil, err
		}
		return cells.NewEngine(idx, refine), nil
	default:
		return nil, fmt.Errorf("fairrank: unknown mode %v", mode)
	}
}
