package fairrank

import (
	"errors"
	"fmt"
	"io"

	"fairrank/internal/cells"
	"fairrank/internal/core"
	"fairrank/internal/engine"
	"fairrank/internal/flatidx"
	"fairrank/internal/twod"
)

// This file is the one place engine-mode dispatch lives. Everything above it
// — the Designer's query methods, the batch fan-out, persistence, the
// serving registry and the HTTP API — talks to engine.Engine and never
// branches on Mode; adding an engine means adding a case to the two
// constructors below and nothing else.

// buildEngine runs a concrete mode's offline phase over the dataset and
// wraps the resulting index in its engine adapter.
func buildEngine(mode Mode, ds *Dataset, oracle Oracle, cfg Config) (engine.Engine, error) {
	switch mode {
	case Mode2D:
		if ds.D() != 2 {
			return nil, fmt.Errorf("fairrank: Mode2D requires 2 scoring attributes, dataset has %d", ds.D())
		}
		idx, err := twod.RaySweep(ds, oracle, twod.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		return twod.NewEngine(idx), nil
	case ModeExact:
		idx, err := core.SatRegions(ds, oracle, core.Options{
			UseTree:        !cfg.DisableArrangementTree,
			MaxHyperplanes: cfg.MaxHyperplanes,
			Seed:           cfg.Seed,
			PruneTopK:      cfg.PruneTopK,
			Workers:        cfg.Workers,
			// Adjacency-ordered incremental labeling is exact in 2D, where
			// angle-space hyperplanes coincide with the exchange angles.
			IncrementalLabeling: ds.D() == 2,
		})
		if err != nil {
			return nil, err
		}
		return core.NewEngine(idx), nil
	case ModeApprox:
		n := cfg.Cells
		if n <= 0 {
			n = 10000
		}
		cap := cfg.CellRegionCap
		switch {
		case cap == 0:
			cap = 512
		case cap < 0:
			cap = 0 // unlimited
		}
		idx, err := cells.Preprocess(ds, oracle, n, cells.Options{
			Seed:              cfg.Seed,
			PruneTopK:         cfg.PruneTopK,
			MaxHyperplanes:    cfg.MaxHyperplanes,
			MaxRegionsPerCell: cap,
			Workers:           cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		return cells.NewEngine(idx, cfg.RefineQueries), nil
	default:
		return nil, fmt.Errorf("fairrank: unknown mode %v", mode)
	}
}

// codecs maps each mode onto its engine's persistence codec. Like
// buildEngine, this table is the only place load-time dispatch lives.
var codecs = map[Mode]engine.Codec{
	Mode2D:     twod.Codec{},
	ModeExact:  core.Codec{},
	ModeApprox: cells.Codec{},
}

// loadEngine reconstructs a mode's engine adapter from a persisted index
// payload of either format (the universal header has already been read and
// validated). Flat-payload damage — bad checksums, truncated sections,
// implausible slab shapes — surfaces as ErrCorruptIndex.
func loadEngine(mode Mode, r io.Reader, format engine.PayloadFormat, ds *Dataset, oracle Oracle, refine bool) (engine.Engine, error) {
	codec, ok := codecs[mode]
	if !ok {
		return nil, fmt.Errorf("fairrank: unknown mode %v", mode)
	}
	eng, err := codec.Decode(r, format, ds, oracle, engine.DecodeOpts{Refine: refine})
	if err != nil {
		if errors.Is(err, flatidx.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
		}
		return nil, err
	}
	return eng, nil
}
