package fairrank

import (
	"errors"
	"fmt"

	"fairrank/internal/dataset"
	"fairrank/internal/engine"
)

// DatasetDelta describes a dataset patch: items removed by their pre-patch
// index (strictly ascending) plus items appended after the survivors. See
// ApplyDelta and Designer.Patch.
type DatasetDelta = dataset.Delta

// PatchItem is one appended item: its scoring row plus a category label for
// every type attribute of the dataset.
type PatchItem = dataset.AddItem

// DefaultRepairChurnFrac is the repair-vs-rebuild threshold Patch uses when
// Config.RepairChurnFrac is zero: deltas touching at most this fraction of
// the pre-patch items are spliced into the index incrementally.
const DefaultRepairChurnFrac = 0.10

// ApplyDelta builds the patched dataset: the survivors of ds in their
// original order followed by the added items. ds is untouched — datasets are
// immutable, a patch is a new dataset with a new fingerprint.
func ApplyDelta(ds *Dataset, delta DatasetDelta) (*Dataset, error) {
	return dataset.Apply(ds, delta)
}

// DiffDatasets recovers the delta turning old into new when new was derived
// from old by removals and tail appends (the shape every ApplyDelta
// produces); ok is false when the two datasets have different schemas.
func DiffDatasets(old, new *Dataset) (DatasetDelta, bool) {
	return dataset.Diff(old, new)
}

// ChainRevision folds the previous revision fingerprint and a patched
// dataset's content fingerprint into the next revision fingerprint — the
// chaining Patch applies. Exposed so index distribution layers can verify a
// patched peer reached the same revision through the same lineage.
func ChainRevision(prev, fingerprint uint64) uint64 {
	return dataset.ChainFingerprint(prev, fingerprint)
}

// Revision identifies the dataset state this designer answers for: the
// dataset fingerprint at build time, chained through every Patch. Two
// designers at the same revision over the same config answer identically.
func (d *Designer) Revision() uint64 { return d.revision }

// RestoreConfig re-arms a designer restored by LoadDesigner with its build
// configuration. A loaded designer carries no retained build state, so its
// first Patch always rebuilds — with the zero Config unless the caller
// restores the one the index was built with.
func (d *Designer) RestoreConfig(cfg Config) { d.cfg = cfg }

// Patch derives a designer for the patched dataset. ds must be the result of
// ApplyDelta(d's dataset, delta), and oracle must be rebuilt over ds (oracles
// bind group counts and top-k depths to their dataset). When the delta is
// small — at most Config.RepairChurnFrac of the pre-patch items — and the
// engine retains its build state, the index is repaired incrementally
// (engine.Patchable); otherwise it is rebuilt with the designer's original
// configuration. Either way the result answers byte-identically to a
// from-scratch NewDesigner over ds, and its Revision chains the receiver's.
// The receiver is untouched and keeps serving; repaired reports which path
// was taken.
func (d *Designer) Patch(ds *Dataset, oracle Oracle, delta DatasetDelta) (next *Designer, repaired bool, err error) {
	if ds == nil || oracle == nil {
		return nil, false, errors.New("fairrank: nil dataset or oracle")
	}
	if ds.N() < 2 {
		return nil, false, fmt.Errorf("fairrank: patched dataset has %d items; need at least 2", ds.N())
	}
	ed := engine.Delta{Removed: delta.Removed, Added: len(delta.Added)}
	if err := ed.Validate(d.ds.N(), ds.N()); err != nil {
		return nil, false, err
	}
	frac := d.cfg.RepairChurnFrac
	if frac == 0 {
		frac = DefaultRepairChurnFrac
	}
	var eng engine.Engine
	if p, ok := d.eng.(engine.Patchable); ok && frac > 0 && float64(ed.Size()) <= frac*float64(d.ds.N()) {
		// Repair is an optimization, never a capability: any failure — no
		// retained build state, a degenerate refit — falls back to the
		// always-correct rebuild below.
		if e, rerr := p.Repair(ds, oracle, ed); rerr == nil {
			eng, repaired = e, true
		}
	}
	if eng == nil {
		eng, err = buildEngine(d.mode, ds, oracle, d.cfg)
		if err != nil {
			return nil, false, err
		}
	}
	return &Designer{
		ds:       ds,
		oracle:   oracle,
		mode:     d.mode,
		refine:   d.refine,
		eng:      eng,
		cfg:      d.cfg,
		revision: dataset.ChainFingerprint(d.revision, ds.Fingerprint()),
	}, repaired, nil
}
