// Dataset mutability: the patch path must be indistinguishable from a
// from-scratch rebuild. The property suite drives seeded randomized
// insert/delete sequences through Designer.Patch for all three engines and
// compares every intermediate revision against a fresh NewDesigner over the
// same data — Suggest, SuggestBatch, Satisfiable, and QualityBound must
// agree bit for bit, whether the engine repaired in place or fell back to a
// rebuild. Failures shrink: the harness re-runs the failing step with
// one-smaller deltas until no sub-delta still fails, so the report names a
// minimal reproducing patch. The server-level tests cover the concurrency
// contract (readers keep answering the old index until the atomic swap, the
// memo cache never crosses a patch) and FuzzPatchDataset throws hostile
// deltas at the HTTP-facing entry point.
package fairrank

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairrank/internal/datagen"
)

// patchQueryFan returns n queries spread across the positive orthant of
// dimension d at a non-unit magnitude.
func patchQueryFan(d, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		w := make([]float64, d)
		theta := (float64(i) + 0.5) / float64(n) * math.Pi / 2
		w[0] = 1.5 * math.Cos(theta)
		w[1] = 1.5 * math.Sin(theta)
		for j := 2; j < d; j++ {
			w[j] = 0.2 + 0.6*float64(i)/float64(n)
		}
		out[i] = w
	}
	return out
}

// randomPatchDelta draws a delta over ds: up to maxRemove distinct removals
// and up to maxAdd appended items with rows in [0,1) and type labels drawn
// from the dataset's own label sets. At least one change is always made.
func randomPatchDelta(ds *Dataset, rng *rand.Rand, maxRemove, maxAdd int) DatasetDelta {
	var delta DatasetDelta
	for delta.Empty() {
		nRem := rng.Intn(maxRemove + 1)
		if ds.N()-nRem < 2 {
			nRem = 0
		}
		perm := rng.Perm(ds.N())
		delta.Removed = append([]int(nil), perm[:nRem]...)
		sort.Ints(delta.Removed)
		nAdd := rng.Intn(maxAdd + 1)
		for i := 0; i < nAdd; i++ {
			row := make([]float64, ds.D())
			for j := range row {
				row[j] = rng.Float64()
			}
			types := map[string]string{}
			for _, ta := range ds.TypeAttrs() {
				types[ta.Name] = ta.Labels[rng.Intn(len(ta.Labels))]
			}
			delta.Added = append(delta.Added, PatchItem{Row: row, Types: types})
		}
	}
	return delta
}

// sameDesignerAnswers compares two designers the way a client could tell
// them apart: satisfiability, the Theorem 6 bound, and Suggest plus
// SuggestBatch over the query fan — all bit-identical.
func sameDesignerAnswers(got, want *Designer, queries [][]float64) error {
	if got.Satisfiable() != want.Satisfiable() {
		return fmt.Errorf("satisfiable %v, want %v", got.Satisfiable(), want.Satisfiable())
	}
	if math.Float64bits(got.QualityBound()) != math.Float64bits(want.QualityBound()) {
		return fmt.Errorf("quality bound %v, want %v", got.QualityBound(), want.QualityBound())
	}
	for _, q := range queries {
		s1, err1 := got.Suggest(q)
		s2, err2 := want.Suggest(q)
		if (err1 == nil) != (err2 == nil) {
			return fmt.Errorf("query %v: err %v, want %v", q, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				return fmt.Errorf("query %v: err %v, want %v", q, err1, err2)
			}
			continue
		}
		if err := sameSuggestionValues(s1, s2); err != nil {
			return fmt.Errorf("query %v: %v", q, err)
		}
	}
	b1 := got.SuggestBatch(queries)
	b2 := want.SuggestBatch(queries)
	for i := range b2 {
		if (b1[i].Err == nil) != (b2[i].Err == nil) {
			return fmt.Errorf("batch slot %d: err %v, want %v", i, b1[i].Err, b2[i].Err)
		}
		if b2[i].Err != nil {
			continue
		}
		if err := sameSuggestionValues(b1[i].Suggestion, b2[i].Suggestion); err != nil {
			return fmt.Errorf("batch slot %d: %v", i, err)
		}
	}
	return nil
}

func sameSuggestionValues(got, want *Suggestion) error {
	if got.AlreadyFair != want.AlreadyFair ||
		math.Float64bits(got.Distance) != math.Float64bits(want.Distance) {
		return fmt.Errorf("distance/fair (%v,%v), want (%v,%v)",
			got.Distance, got.AlreadyFair, want.Distance, want.AlreadyFair)
	}
	if len(got.Weights) != len(want.Weights) {
		return fmt.Errorf("weights %v, want %v", got.Weights, want.Weights)
	}
	for j := range want.Weights {
		if math.Float64bits(got.Weights[j]) != math.Float64bits(want.Weights[j]) {
			return fmt.Errorf("weights %v, want %v (must be byte-identical)", got.Weights, want.Weights)
		}
	}
	return nil
}

// patchOracle rebuilds the property suite's oracle over the given dataset
// state (oracles bind group counts to their dataset, so every patch step
// needs a fresh one).
func patchOracle(t testing.TB, ds *Dataset) Oracle {
	t.Helper()
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// patchStepCheck applies one delta through Designer.Patch and verifies the
// result against a fresh rebuild at the same dataset state. It returns the
// advanced (designer, dataset) pair and whether the repair path ran; a
// non-nil checkErr reports the first observable divergence.
func patchStepCheck(t *testing.T, d *Designer, cur *Dataset, cfg Config, delta DatasetDelta) (
	next *Designer, newDS *Dataset, repaired bool, checkErr error) {
	t.Helper()
	newDS, err := ApplyDelta(cur, delta)
	if err != nil {
		t.Fatalf("applying delta %+v: %v", delta, err)
	}
	oracle := patchOracle(t, newDS)
	next, repaired, err = d.Patch(newDS, oracle, delta)
	if err != nil {
		t.Fatalf("Patch(%+v): %v", delta, err)
	}
	if want := ChainRevision(d.Revision(), newDS.Fingerprint()); next.Revision() != want {
		t.Fatalf("patched revision %#x, want chained %#x", next.Revision(), want)
	}
	fresh, err := NewDesigner(newDS, patchOracle(t, newDS), cfg)
	if err != nil {
		t.Fatalf("rebuild reference: %v", err)
	}
	return next, newDS, repaired, sameDesignerAnswers(next, fresh, patchQueryFan(newDS.D(), 12))
}

// shrinkPatchDelta minimizes a failing delta: repeatedly drop one removal or
// one addition while the single-step check still fails, and return the
// smallest delta that reproduces the divergence.
func shrinkPatchDelta(t *testing.T, d *Designer, cur *Dataset, cfg Config, delta DatasetDelta) (DatasetDelta, error) {
	t.Helper()
	_, _, _, lastErr := patchStepCheck(t, d, cur, cfg, delta)
	for shrunk := true; shrunk; {
		shrunk = false
		for i := 0; i < len(delta.Removed); i++ {
			cand := delta
			cand.Removed = append(append([]int(nil), delta.Removed[:i]...), delta.Removed[i+1:]...)
			if cand.Empty() {
				continue
			}
			if _, _, _, err := patchStepCheck(t, d, cur, cfg, cand); err != nil {
				delta, lastErr, shrunk = cand, err, true
				break
			}
		}
		if shrunk {
			continue
		}
		for i := 0; i < len(delta.Added); i++ {
			cand := delta
			cand.Added = append(append([]PatchItem(nil), delta.Added[:i]...), delta.Added[i+1:]...)
			if cand.Empty() {
				continue
			}
			if _, _, _, err := patchStepCheck(t, d, cur, cfg, cand); err != nil {
				delta, lastErr, shrunk = cand, err, true
				break
			}
		}
	}
	return delta, lastErr
}

// TestPatchEquivalentToRebuildAllEngines is the correctness anchor of the
// mutability work: seeded random insert/delete sequences, every intermediate
// revision compared bit-for-bit against a fresh rebuild, for all three
// engines. The churn threshold is opened up so the sequences exercise the
// incremental repair path (asserted to actually run), and the approx config
// keeps the default serial marking — parallel MARKCELL is nondeterministic
// even across two rebuilds, so byte-equality is only defined for Workers<=1.
func TestPatchEquivalentToRebuildAllEngines(t *testing.T) {
	cases := []struct {
		name string
		ds   func(t *testing.T) *Dataset
		cfg  Config
	}{
		{
			name: "2d",
			ds: func(t *testing.T) *Dataset {
				ds, err := datagen.Biased(80, 2, 0.5, 0.3, 1, 11)
				if err != nil {
					t.Fatal(err)
				}
				return ds
			},
			cfg: Config{Mode: Mode2D, RepairChurnFrac: 0.5},
		},
		{
			name: "exact",
			ds: func(t *testing.T) *Dataset {
				ds, err := datagen.Uniform(30, 2, 0.5, 8)
				if err != nil {
					t.Fatal(err)
				}
				return ds
			},
			// d=2 with a binding hyperplane cap: an uncapped 3-D arrangement
			// makes each of the suite's from-scratch reference builds cost
			// minutes under -race; the capped 2-D instance exercises the same
			// repair path (including cap-miss refits) in seconds.
			cfg: Config{Mode: ModeExact, Seed: 7, MaxHyperplanes: 120, RepairChurnFrac: 0.5},
		},
		{
			name: "approx",
			ds: func(t *testing.T) *Dataset {
				ds, err := datagen.Uniform(40, 3, 0.5, 8)
				if err != nil {
					t.Fatal(err)
				}
				return ds
			},
			cfg: Config{Mode: ModeApprox, Cells: 80, MaxHyperplanes: 300, Seed: 7, RepairChurnFrac: 0.5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 42} {
				rng := rand.New(rand.NewSource(seed))
				cur := tc.ds(t)
				d, err := NewDesigner(cur, patchOracle(t, cur), tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				repairs := 0
				for step := 0; step < 4; step++ {
					delta := randomPatchDelta(cur, rng, 3, 3)
					next, newDS, repaired, checkErr := patchStepCheck(t, d, cur, tc.cfg, delta)
					if checkErr != nil {
						minimal, minErr := shrinkPatchDelta(t, d, cur, tc.cfg, delta)
						t.Fatalf("engine %s seed %d step %d: patched designer diverges from rebuild: %v\nminimal failing delta (shrunk from -%d/+%d): %+v (%v)",
							tc.name, seed, step, checkErr, len(delta.Removed), len(delta.Added), minimal, minErr)
					}
					if repaired {
						repairs++
					}
					d, cur = next, newDS
				}
				if repairs == 0 {
					t.Fatalf("engine %s seed %d: no step took the incremental repair path (churn frac 0.5, deltas <=6 of %d items)",
						tc.name, seed, tc.ds(t).N())
				}
			}
		})
	}
}

// Above the churn threshold Patch must refuse to repair and rebuild instead
// — and the rebuild must be just as byte-identical to a fresh designer.
func TestPatchLargeChurnRebuildsEquivalently(t *testing.T) {
	ds, err := datagen.Biased(60, 2, 0.5, 0.3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: Mode2D} // default threshold: 10% of 60 = 6
	d, err := NewDesigner(ds, patchOracle(t, ds), cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta := DatasetDelta{Removed: []int{0, 7, 14, 21, 28, 35, 42}} // churn 7 > 6
	next, newDS, repaired, checkErr := patchStepCheck(t, d, ds, cfg, delta)
	if repaired {
		t.Fatal("churn above the threshold must rebuild, not repair")
	}
	if checkErr != nil {
		t.Fatalf("rebuild fallback diverges from fresh designer: %v", checkErr)
	}
	// A negative threshold disables repair outright even for a tiny delta.
	cfgOff := cfg
	cfgOff.RepairChurnFrac = -1
	dOff, err := NewDesigner(newDS, patchOracle(t, newDS), cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	small := DatasetDelta{Removed: []int{1}}
	if _, _, rep, err := patchStepCheck(t, dOff, newDS, cfgOff, small); err != nil || rep {
		t.Fatalf("disabled repair: repaired=%v err=%v, want rebuild with identical answers", rep, err)
	}
	_ = next
}

// Designer.Patch must reject malformed deltas without touching the receiver,
// and ApplyDelta must enforce the dataset-side contract.
func TestPatchValidation(t *testing.T) {
	ds, err := datagen.Uniform(10, 3, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDesigner(ds, patchOracle(t, ds), Config{Cells: 60})
	if err != nil {
		t.Fatal(err)
	}
	okItem := PatchItem{Row: []float64{0.1, 0.2, 0.3}, Types: map[string]string{"group": "protected"}}
	bad := []struct {
		name  string
		delta DatasetDelta
	}{
		{"duplicate removals", DatasetDelta{Removed: []int{2, 2}}},
		{"descending removals", DatasetDelta{Removed: []int{5, 3}}},
		{"out-of-range removal", DatasetDelta{Removed: []int{10}}},
		{"negative removal", DatasetDelta{Removed: []int{-1}}},
		{"d-mismatched row", DatasetDelta{Added: []PatchItem{{Row: []float64{1, 2}, Types: okItem.Types}}}},
		{"unknown label", DatasetDelta{Added: []PatchItem{{Row: okItem.Row, Types: map[string]string{"group": "martian"}}}}},
		{"missing type attr", DatasetDelta{Added: []PatchItem{{Row: okItem.Row, Types: map[string]string{}}}}},
		{"shrinks below 2 items", DatasetDelta{Removed: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}}},
	}
	for _, tc := range bad {
		if _, err := ApplyDelta(ds, tc.delta); err == nil {
			t.Errorf("%s: ApplyDelta accepted %+v", tc.name, tc.delta)
		}
	}
	// A patched dataset that does not match the delta must be rejected too.
	wrong, err := ApplyDelta(ds, DatasetDelta{Added: []PatchItem{okItem, okItem}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Patch(wrong, patchOracle(t, wrong), DatasetDelta{Added: []PatchItem{okItem}}); err == nil {
		t.Error("Patch accepted a dataset inconsistent with its delta")
	}
	if _, _, err := d.Patch(nil, nil, DatasetDelta{}); err == nil {
		t.Error("Patch accepted a nil dataset")
	}
}

// A designer restored from a persisted index has no retained build state:
// its first Patch must fall back to a rebuild — with the restored config,
// not the zero value — and still answer identically to a fresh designer.
func TestPatchAfterLoadRebuildsWithRestoredConfig(t *testing.T) {
	ds, err := datagen.Uniform(40, 3, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeApprox, Cells: 300, Seed: 7}
	d, err := NewDesigner(ds, patchOracle(t, ds), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesigner(&buf, ds, patchOracle(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	loaded.RestoreConfig(cfg)
	delta := DatasetDelta{Removed: []int{3}}
	next, newDS, repaired, checkErr := patchStepCheck(t, loaded, ds, cfg, delta)
	if repaired {
		t.Fatal("a loaded designer has no build state; repair must not claim success")
	}
	if checkErr != nil {
		t.Fatalf("patched loaded designer diverges from rebuild: %v", checkErr)
	}
	if next.QualityBound() <= 0 || newDS.N() != 39 {
		t.Fatalf("rebuilt approx designer lost its config: bound=%v n=%d", next.QualityBound(), newDS.N())
	}
}

// patchTestServer is one in-process server with a patchable 2D designer.
func patchTestServer(t *testing.T) (*Server, *Dataset, string, string) {
	t.Helper()
	srv := NewServer()
	t.Cleanup(srv.Close)
	ds, err := datagen.Biased(80, 2, 0.5, 0.3, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("mutable", ds); err != nil {
		t.Fatal(err)
	}
	spec := DesignerSpec{
		Dataset: "mutable",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
		Config:  ConfigSpec{Mode: "2d", RepairChurnFrac: 0.5},
	}
	if err := srv.CreateDesigner("mutable-2d", spec); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitReady(t.Context(), "mutable-2d"); err != nil {
		t.Fatal(err)
	}
	return srv, ds, "mutable", "mutable-2d"
}

// Readers racing a patch must always get a coherent answer: the old index
// until the atomic swap, the patched index after, never an error and never a
// torn state. Run under -race this also proves the swap protocol itself.
func TestPatchRacingSuggestAndBatch(t *testing.T) {
	srv, _, dsID, id := patchTestServer(t)
	queries := patchQueryFan(2, 6)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					s, err := srv.Suggest(id, queries[w%len(queries)])
					if err != nil && err != ErrUnsatisfiable {
						t.Errorf("suggest during patch: %v", err)
						return
					}
					if err == nil && len(s.Weights) != 2 {
						t.Errorf("suggest returned %d weights", len(s.Weights))
						return
					}
				} else {
					rs, err := srv.SuggestBatch(id, queries)
					if err != nil {
						t.Errorf("batch during patch: %v", err)
						return
					}
					for _, r := range rs {
						if r.Err != nil && r.Err != ErrUnsatisfiable {
							t.Errorf("batch slot error during patch: %v", r.Err)
							return
						}
					}
				}
				reads.Add(1)
			}
		}(w)
	}
	rng := rand.New(rand.NewSource(9))
	var lastRev uint64
	for i := 0; i < 6; i++ {
		cur, _ := srv.Dataset(dsID)
		delta := randomPatchDelta(cur, rng, 2, 2)
		res, err := srv.PatchDataset(dsID, delta)
		if err != nil {
			t.Fatalf("patch %d: %v", i, err)
		}
		for _, dr := range res.Designers {
			if dr.Error != "" {
				t.Fatalf("patch %d: designer splice failed: %s", i, dr.Error)
			}
		}
		if res.Revision == lastRev {
			t.Fatalf("patch %d did not advance the revision", i)
		}
		lastRev = res.Revision
	}
	// The patches may outrun goroutine scheduling; keep the readers running
	// until at least a few reads have landed so the assertions are not vacuous.
	waitFor(t, 10*time.Second, "racing readers to complete reads", func() bool {
		return reads.Load() >= 8
	})
	close(stop)
	wg.Wait()
	// Steady state: the server answers byte-identically to a fresh designer
	// over the final dataset.
	final, _ := srv.Dataset(dsID)
	fresh, err := NewDesigner(final, patchOracle(t, final), Config{Mode: Mode2D})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, err1 := srv.Suggest(id, q)
		want, err2 := fresh.Suggest(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("post-storm query %v: err %v vs %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if err := sameSuggestionValues(got, want); err != nil {
			t.Fatalf("post-storm query %v: %v", q, err)
		}
	}
}

// A patch issued while the designer's initial build is still in flight must
// queue behind the build (Entry.Patch waits on the build slot) and land on
// whatever the build produced — not error, not deadlock, not splice a
// half-built engine.
func TestPatchDuringBackgroundBuildQueues(t *testing.T) {
	srv := NewServer()
	t.Cleanup(srv.Close)
	ds, err := datagen.Biased(80, 2, 0.5, 0.3, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("mutable", ds); err != nil {
		t.Fatal(err)
	}
	spec := DesignerSpec{
		Dataset: "mutable",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
		Config:  ConfigSpec{Mode: "2d", RepairChurnFrac: 0.5},
	}
	if err := srv.CreateDesigner("mutable-2d", spec); err != nil {
		t.Fatal(err)
	}
	// No WaitReady: the patch races the initial background build.
	res, err := srv.PatchDataset("mutable", DatasetDelta{Removed: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, dr := range res.Designers {
		if dr.Error != "" {
			t.Fatalf("patch racing the build failed: %s", dr.Error)
		}
	}
	if err := srv.WaitReady(t.Context(), "mutable-2d"); err != nil {
		t.Fatal(err)
	}
	final, _ := srv.Dataset("mutable")
	fresh, err := NewDesigner(final, patchOracle(t, final), Config{Mode: Mode2D})
	if err != nil {
		t.Fatal(err)
	}
	got, err1 := srv.Suggest("mutable-2d", []float64{0.6, 0.4})
	want, err2 := fresh.Suggest([]float64{0.6, 0.4})
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("err %v vs %v", err1, err2)
	}
	if err1 == nil {
		if err := sameSuggestionValues(got, want); err != nil {
			t.Fatalf("patched-during-build designer diverges: %v", err)
		}
	}
}

// The suggest memo cache must never serve a pre-patch answer at a
// post-patch generation: a patch bumps the entry generation and installs a
// fresh cache, so a query cached before the patch re-resolves afterwards.
func TestPatchInvalidatesSuggestMemo(t *testing.T) {
	srv, _, dsID, id := patchTestServer(t)
	entry, err := srv.localEntry(id)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := entry.Generation()
	q := []float64{0.7, 0.3}
	// Prime the memo: two identical queries, the second served from cache.
	if _, err := srv.Suggest(id, q); err != nil && err != ErrUnsatisfiable {
		t.Fatal(err)
	}
	if _, err := srv.Suggest(id, q); err != nil && err != ErrUnsatisfiable {
		t.Fatal(err)
	}
	st, err := srv.DesignerStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Metrics.CacheHits == 0 {
		t.Fatal("memo cache never engaged; the invalidation assertion below would be vacuous")
	}
	// Remove the current top items so the answer for q changes shape.
	res, err := srv.PatchDataset(dsID, DatasetDelta{Removed: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, dr := range res.Designers {
		if dr.Error != "" {
			t.Fatalf("designer splice failed: %s", dr.Error)
		}
	}
	if entry.Generation() <= genBefore {
		t.Fatalf("patch did not bump the generation: %d -> %d", genBefore, entry.Generation())
	}
	final, _ := srv.Dataset(dsID)
	fresh, err := NewDesigner(final, patchOracle(t, final), Config{Mode: Mode2D})
	if err != nil {
		t.Fatal(err)
	}
	got, err1 := srv.Suggest(id, q) // must re-resolve, not replay the memo
	want, err2 := fresh.Suggest(q)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("err %v vs %v", err1, err2)
	}
	if err1 == nil {
		if err := sameSuggestionValues(got, want); err != nil {
			t.Fatalf("post-patch answer is not the patched index's: %v (memo leak across generations)", err)
		}
	}
}

// An empty delta is a no-op: same revision, no generation bump, no designer
// splices.
func TestPatchEmptyDeltaNoOp(t *testing.T) {
	srv, _, dsID, id := patchTestServer(t)
	entry, err := srv.localEntry(id)
	if err != nil {
		t.Fatal(err)
	}
	revBefore, _ := srv.DatasetRevision(dsID)
	genBefore := entry.Generation()
	res, err := srv.PatchDataset(dsID, DatasetDelta{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Revision != revBefore || len(res.Designers) != 0 {
		t.Fatalf("empty delta mutated state: %+v (rev before %#x)", res, revBefore)
	}
	if entry.Generation() != genBefore {
		t.Fatal("empty delta bumped the designer generation")
	}
	if _, err := srv.PatchDataset("ghost", DatasetDelta{Removed: []int{0}}); err == nil {
		t.Fatal("patch of an unknown dataset must fail")
	}
}

// FuzzPatchDataset throws arbitrary deltas at the server entry point:
// duplicate and out-of-range removals, d-mismatched rows, unknown labels,
// missing type attributes, unknown dataset ids, empty deltas. Invariants: no
// panic; a rejected patch leaves the dataset, its revision, and the designer
// untouched; an accepted patch advances the revision and leaves the designer
// answering exactly like a fresh rebuild over the patched data.
func FuzzPatchDataset(f *testing.F) {
	// Seeds: empty delta, plain remove, remove+add, duplicate removals,
	// out-of-range removal, d-mismatched row, unknown label, unknown dataset.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0})
	f.Add([]byte{2, 1, 3, 1, 1, 128, 64, 0, 0})
	f.Add([]byte{2, 4, 4, 0, 0})
	f.Add([]byte{1, 250, 0, 0})
	f.Add([]byte{0, 1, 0, 128, 64, 0, 0})
	f.Add([]byte{0, 1, 1, 128, 64, 3, 0})
	f.Add([]byte{1, 2, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer()
		defer srv.Close()
		base, err := datagen.Biased(12, 2, 0.5, 0.3, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.AddDataset("fuzz", base); err != nil {
			t.Fatal(err)
		}
		spec := DesignerSpec{
			Dataset: "fuzz",
			Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
			Config:  ConfigSpec{Mode: "2d", RepairChurnFrac: 0.5},
		}
		if err := srv.CreateDesigner("fuzz-2d", spec); err != nil {
			t.Fatal(err)
		}
		if err := srv.WaitReady(t.Context(), "fuzz-2d"); err != nil {
			t.Fatal(err)
		}

		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		var delta DatasetDelta
		nRem := int(next() % 6)
		for k := 0; k < nRem; k++ {
			delta.Removed = append(delta.Removed, int(int8(next())))
		}
		nAdd := int(next() % 4)
		labels := []string{"majority", "protected", "martian"}
		for k := 0; k < nAdd; k++ {
			rowLen := 2
			switch next() % 5 {
			case 3:
				rowLen = 1
			case 4:
				rowLen = 3
			}
			row := make([]float64, rowLen)
			for j := range row {
				row[j] = float64(next()) / 255
			}
			item := PatchItem{Row: row, Types: map[string]string{}}
			lb := next()
			if lb%7 != 6 { // sometimes omit the type attribute entirely
				item.Types["group"] = labels[int(lb)%len(labels)]
			}
			delta.Added = append(delta.Added, item)
		}
		target := "fuzz"
		if next()%9 == 8 {
			target = "ghost"
		}

		before, _ := srv.Dataset("fuzz")
		revBefore, _ := srv.DatasetRevision("fuzz")
		res, err := srv.PatchDataset(target, delta)
		after, _ := srv.Dataset("fuzz")
		revAfter, _ := srv.DatasetRevision("fuzz")
		if err != nil {
			if after.N() != before.N() || revAfter != revBefore {
				t.Fatalf("rejected patch mutated the dataset: n %d->%d rev %#x->%#x",
					before.N(), after.N(), revBefore, revAfter)
			}
			return
		}
		if delta.Empty() {
			if revAfter != revBefore {
				t.Fatalf("empty delta advanced the revision %#x -> %#x", revBefore, revAfter)
			}
			return
		}
		if revAfter == revBefore {
			t.Fatalf("accepted patch did not advance the revision (%#x)", revAfter)
		}
		if res.N != after.N() || after.N() != before.N()-len(delta.Removed)+len(delta.Added) {
			t.Fatalf("patched item count %d (reported %d), want %d",
				after.N(), res.N, before.N()-len(delta.Removed)+len(delta.Added))
		}
		for _, dr := range res.Designers {
			if dr.Error != "" {
				t.Fatalf("valid patch failed the designer splice: %s", dr.Error)
			}
		}
		fresh, err := NewDesigner(after, patchOracle(t, after), Config{Mode: Mode2D})
		if err != nil {
			t.Fatal(err)
		}
		q := []float64{0.6, 0.4}
		got, err1 := srv.Suggest("fuzz-2d", q)
		want, err2 := fresh.Suggest(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("post-patch err %v, fresh rebuild err %v", err1, err2)
		}
		if err1 == nil {
			if err := sameSuggestionValues(got, want); err != nil {
				t.Fatalf("post-patch designer diverges from rebuild: %v", err)
			}
		}
	})
}
