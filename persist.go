package fairrank

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fairrank/internal/engine"
)

// Index persistence: every engine's offline phase can be saved with
// Designer.SaveIndex and restored with LoadDesigner. The stream is a single
// self-describing header shared by all engines — magic, format version,
// engine mode, dimensionality, item count, and a fingerprint of the dataset
// the index was built over — followed by the engine's own payload. The
// header is what lets a serving process (cmd/fairrankd) pick up whatever
// index files it finds in its data directory and refuse, with a precise
// error, the ones that do not match the data it is holding.

// indexMagic identifies a fairrank index stream; it doubles as a version
// gate for the header layout itself.
var indexMagic = [8]byte{'F', 'R', 'N', 'K', 'I', 'D', 'X', '1'}

// IndexFormatVersion is the current version of the universal index header.
// Engine payloads carry their own format versions on top of it.
const IndexFormatVersion = 1

// indexStreamHeaderLen is the byte length of the magic plus the universal
// header — where the engine payload starts in every index stream.
const indexStreamHeaderLen = 8 + 32

// indexHeader is the fixed-size universal header preceding every engine
// payload.
type indexHeader struct {
	Version     uint32
	Mode        uint32
	D           uint32
	Flags       uint32
	N           uint64
	Fingerprint uint64
}

// Header flag bits. flagRefineQueries is a query-time designer setting that
// must survive a save/load cycle for a loaded designer to answer
// identically; flagFlatPayload records which encoding the engine payload
// uses — set on every stream this build writes, absent on PR-2-era gob
// stores, which still load (and are migrated on startup, see
// Server.loadDesigner).
// flagRevision marks a stream carrying the designer's revision fingerprint
// (see Designer.Revision) as an 8-byte little-endian word between the header
// and the engine payload; absent on streams written before datasets became
// patchable, which load at the dataset's own fingerprint.
const (
	flagRefineQueries = 1 << 0
	flagFlatPayload   = 1 << 1
	flagRevision      = 1 << 2
)

// ErrCorruptIndex reports that a stream is not a fairrank index or was
// truncated or damaged before the engine payload.
var ErrCorruptIndex = errors.New("fairrank: corrupt or truncated index stream")

// ErrDatasetMismatch reports that an index was built over a different
// dataset than the one supplied to LoadDesigner.
var ErrDatasetMismatch = errors.New("fairrank: index was built for a different dataset")

// writeIndexHeader writes the magic and the universal header.
func writeIndexHeader(w io.Writer, mode Mode, ds *Dataset, flags uint32) error {
	if _, err := w.Write(indexMagic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, indexHeader{
		Version:     IndexFormatVersion,
		Mode:        uint32(mode),
		D:           uint32(ds.D()),
		Flags:       flags,
		N:           uint64(ds.N()),
		Fingerprint: ds.Fingerprint(),
	})
}

// readIndexHeader reads and validates the magic and the universal header
// against the dataset the caller wants to serve.
func readIndexHeader(r io.Reader, ds *Dataset) (Mode, uint32, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
	}
	if magic != indexMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorruptIndex, magic[:])
	}
	var h indexHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
	}
	if h.Version != IndexFormatVersion {
		return 0, 0, fmt.Errorf("fairrank: index header version %d, want %d", h.Version, IndexFormatVersion)
	}
	mode := Mode(h.Mode)
	switch mode {
	case Mode2D, ModeExact, ModeApprox:
	default:
		return 0, 0, fmt.Errorf("%w: unknown engine mode %d", ErrCorruptIndex, h.Mode)
	}
	if int(h.D) != ds.D() || h.N != uint64(ds.N()) {
		return 0, 0, fmt.Errorf("%w: index is over n=%d, d=%d; dataset has n=%d, d=%d",
			ErrDatasetMismatch, h.N, h.D, ds.N(), ds.D())
	}
	if h.Fingerprint != ds.Fingerprint() {
		return 0, 0, fmt.Errorf("%w: dataset fingerprint %#x, index was built for %#x",
			ErrDatasetMismatch, ds.Fingerprint(), h.Fingerprint)
	}
	return mode, h.Flags, nil
}

// SaveIndex serializes the designer's preprocessed index so the offline
// phase can be paid once and reused across processes (see LoadDesigner).
// All three engines are supported; the stream starts with a universal header
// recording the engine mode and a fingerprint of the dataset, followed by
// the engine's own payload (Engine.Persist).
func (d *Designer) SaveIndex(w io.Writer) error {
	var flags uint32
	if d.refine {
		flags |= flagRefineQueries
	}
	flags |= flagFlatPayload | flagRevision
	if err := writeIndexHeader(w, d.mode, d.ds, flags); err != nil {
		return err
	}
	var rev [8]byte
	binary.LittleEndian.PutUint64(rev[:], d.revision)
	if _, err := w.Write(rev[:]); err != nil {
		return err
	}
	return d.eng.Persist(w)
}

// SaveIndexLegacy writes the PR-2 stream: the same universal header but a
// gob engine payload. The serving stack never calls it — it exists so
// migration tests and cmd/idxtool can manufacture legacy stores against
// which the auto-migration path is exercised.
func (d *Designer) SaveIndexLegacy(w io.Writer) error {
	lp, ok := d.eng.(engine.LegacyPersister)
	if !ok {
		return fmt.Errorf("fairrank: engine %T cannot write the legacy format", d.eng)
	}
	var flags uint32
	if d.refine {
		flags |= flagRefineQueries
	}
	if err := writeIndexHeader(w, d.mode, d.ds, flags); err != nil {
		return err
	}
	return lp.PersistLegacy(w)
}

// IsLegacyIndexStream reports whether b starts with a valid universal header
// whose payload is the PR-2 gob encoding. It never errors: damaged or
// foreign bytes report false and are left for LoadDesigner to diagnose.
// Server startup uses it to decide whether a store it just loaded should be
// re-saved in the current flat format.
func IsLegacyIndexStream(b []byte) bool {
	if len(b) < len(indexMagic)+32 {
		return false
	}
	var magic [8]byte
	copy(magic[:], b)
	if magic != indexMagic {
		return false
	}
	flags := binary.LittleEndian.Uint32(b[20:24])
	return flags&flagFlatPayload == 0
}

// indexPayloadOffset returns the byte offset of the engine payload in an
// index stream: the fixed universal header plus the optional revision word.
// Streams too short or foreign report the fixed header length — callers only
// use the offset to align a resumable payload prefix, and the loader is the
// authority on validity.
func indexPayloadOffset(b []byte) int {
	off := indexStreamHeaderLen
	if len(b) >= indexStreamHeaderLen {
		var magic [8]byte
		copy(magic[:], b)
		if magic == indexMagic && binary.LittleEndian.Uint32(b[20:24])&flagRevision != 0 {
			off += 8
		}
	}
	return off
}

// LoadDesigner reconstructs a designer of any engine mode from a SaveIndex
// stream. ds and oracle must be the ones the index was built for: the
// header's dataset fingerprint is checked (ErrDatasetMismatch), and damaged
// streams fail with ErrCorruptIndex or an engine decoding error. A loaded
// designer returns byte-identical Suggest answers to the designer that
// wrote the index.
func LoadDesigner(r io.Reader, ds *Dataset, oracle Oracle) (*Designer, error) {
	if ds == nil || oracle == nil {
		return nil, errors.New("fairrank: nil dataset or oracle")
	}
	mode, flags, err := readIndexHeader(r, ds)
	if err != nil {
		return nil, err
	}
	refine := flags&flagRefineQueries != 0
	revision := ds.Fingerprint()
	if flags&flagRevision != 0 {
		var rev [8]byte
		if _, err := io.ReadFull(r, rev[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptIndex, err)
		}
		revision = binary.LittleEndian.Uint64(rev[:])
	}
	format := engine.PayloadGob
	if flags&flagFlatPayload != 0 {
		format = engine.PayloadFlat
	}
	eng, err := loadEngine(mode, r, format, ds, oracle, refine)
	if err != nil {
		return nil, err
	}
	return &Designer{ds: ds, oracle: oracle, mode: mode, refine: refine, eng: eng, revision: revision}, nil
}
