package fairrank

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fairrank/internal/datagen"
	"fairrank/internal/flatidx"
)

// roundtripFixture builds a designer in the given mode over a small dataset
// with a matching oracle, plus a set of probe queries.
func roundtripFixture(t testing.TB, mode Mode) (*Dataset, Oracle, *Designer, [][]float64) {
	t.Helper()
	var (
		ds  *Dataset
		err error
	)
	d2 := mode == Mode2D
	if d2 {
		ds, err = datagen.Biased(80, 2, 0.5, 0.3, 1, 11)
	} else {
		ds, err = datagen.Uniform(24, 3, 0.5, 11)
	}
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: mode, Seed: 3}
	if mode == ModeApprox {
		cfg.Cells = 400
		cfg.CellRegionCap = 64
	}
	d, err := NewDesigner(ds, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	var queries [][]float64
	for q := 0; q < 12; q++ {
		w := make([]float64, ds.D())
		for k := range w {
			w[k] = r.Float64() + 0.01
		}
		queries = append(queries, w)
	}
	return ds, oracle, d, queries
}

// Every engine's index must roundtrip through SaveIndex/LoadDesigner with
// byte-identical Suggest answers.
func TestSaveLoadRoundtripAllModes(t *testing.T) {
	for _, mode := range []Mode{Mode2D, ModeExact, ModeApprox} {
		t.Run(mode.String(), func(t *testing.T) {
			ds, oracle, d, queries := roundtripFixture(t, mode)
			var buf bytes.Buffer
			if err := d.SaveIndex(&buf); err != nil {
				t.Fatalf("SaveIndex(%v): %v", mode, err)
			}
			loaded, err := LoadDesigner(bytes.NewReader(buf.Bytes()), ds, oracle)
			if err != nil {
				t.Fatalf("LoadDesigner(%v): %v", mode, err)
			}
			if loaded.Mode() != mode {
				t.Fatalf("loaded mode %v, want %v", loaded.Mode(), mode)
			}
			if loaded.Satisfiable() != d.Satisfiable() {
				t.Fatal("satisfiability changed by save/load")
			}
			for _, w := range queries {
				s1, err1 := d.Suggest(w)
				s2, err2 := loaded.Suggest(w)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("error mismatch for %v: %v vs %v", w, err1, err2)
				}
				if err1 != nil {
					if !errors.Is(err1, ErrUnsatisfiable) {
						t.Fatal(err1)
					}
					continue
				}
				if s1.Distance != s2.Distance || s1.AlreadyFair != s2.AlreadyFair {
					t.Fatalf("answer changed by save/load: %+v vs %+v", s1, s2)
				}
				for k := range s1.Weights {
					if s1.Weights[k] != s2.Weights[k] {
						t.Fatalf("weights not byte-identical: %v vs %v", s1.Weights, s2.Weights)
					}
				}
			}
		})
	}
}

func TestLoadDesignerCorruptStream(t *testing.T) {
	ds, oracle, d, _ := roundtripFixture(t, Mode2D)
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Not an index at all.
	if _, err := LoadDesigner(bytes.NewReader([]byte("not an index stream")), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("garbage stream: got %v, want ErrCorruptIndex", err)
	}
	// Truncated inside the header.
	if _, err := LoadDesigner(bytes.NewReader(good[:10]), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("truncated header: got %v, want ErrCorruptIndex", err)
	}
	// Truncated inside the engine payload: the header parses, gob fails.
	if _, err := LoadDesigner(bytes.NewReader(good[:len(good)-7]), ds, oracle); err == nil {
		t.Error("truncated payload should fail to load")
	}
	// Flipped bytes in the engine payload.
	bad := append([]byte(nil), good...)
	for i := len(bad) - 20; i < len(bad)-12; i++ {
		bad[i] ^= 0xff
	}
	if _, err := LoadDesigner(bytes.NewReader(bad), ds, oracle); err == nil {
		t.Error("corrupted payload should fail to load")
	}
	// Empty stream.
	if _, err := LoadDesigner(bytes.NewReader(nil), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("empty stream: got %v, want ErrCorruptIndex", err)
	}
}

func TestLoadDesignerWrongDataset(t *testing.T) {
	ds, oracle, d, _ := roundtripFixture(t, Mode2D)
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}

	// Same shape, different values: fingerprint must catch it.
	other, err := datagen.Biased(80, 2, 0.5, 0.3, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDesigner(bytes.NewReader(buf.Bytes()), other, oracle); !errors.Is(err, ErrDatasetMismatch) {
		t.Errorf("different data: got %v, want ErrDatasetMismatch", err)
	}
	// Different shape: caught before the fingerprint.
	smaller, err := datagen.Biased(40, 2, 0.5, 0.3, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDesigner(bytes.NewReader(buf.Bytes()), smaller, oracle); !errors.Is(err, ErrDatasetMismatch) {
		t.Errorf("different n: got %v, want ErrDatasetMismatch", err)
	}
	// The dataset it was built for still loads.
	if _, err := LoadDesigner(bytes.NewReader(buf.Bytes()), ds, oracle); err != nil {
		t.Errorf("original dataset should load: %v", err)
	}
}

// Query-time settings (RefineQueries) must survive the save/load cycle, or
// a restarted server answers with a different quality than the one that
// built the index.
func TestSaveLoadPreservesRefineQueries(t *testing.T) {
	ds, err := datagen.Uniform(24, 3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDesigner(ds, oracle, Config{
		Mode: ModeApprox, Cells: 400, Seed: 3, CellRegionCap: 64, RefineQueries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesigner(&buf, ds, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.refine {
		t.Fatal("RefineQueries lost in the save/load roundtrip")
	}
}

// suggestAll runs every probe query and returns the answers (nil entries for
// unsatisfiable ones), for comparing designers across save/load paths.
func suggestAll(t *testing.T, d *Designer, queries [][]float64) []*Suggestion {
	t.Helper()
	out := make([]*Suggestion, len(queries))
	for i, w := range queries {
		s, err := d.Suggest(w)
		if err != nil {
			if !errors.Is(err, ErrUnsatisfiable) {
				t.Fatal(err)
			}
			continue
		}
		out[i] = s
	}
	return out
}

func sameSuggestions(a, b []*Suggestion) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if a[i] == nil {
			continue
		}
		if a[i].Distance != b[i].Distance || a[i].AlreadyFair != b[i].AlreadyFair ||
			!reflect.DeepEqual(a[i].Weights, b[i].Weights) {
			return false
		}
	}
	return true
}

// A PR-2-era gob store must still load — and answer byte-identically to
// both the original designer and its flat re-save — for every engine. This
// is the migration guarantee: upgrading a node never forces a rebuild.
func TestLegacyGobMigrationRoundtripAllModes(t *testing.T) {
	for _, mode := range []Mode{Mode2D, ModeExact, ModeApprox} {
		t.Run(mode.String(), func(t *testing.T) {
			ds, oracle, d, queries := roundtripFixture(t, mode)
			want := suggestAll(t, d, queries)

			var legacy, flat bytes.Buffer
			if err := d.SaveIndexLegacy(&legacy); err != nil {
				t.Fatalf("SaveIndexLegacy(%v): %v", mode, err)
			}
			if err := d.SaveIndex(&flat); err != nil {
				t.Fatal(err)
			}
			if !IsLegacyIndexStream(legacy.Bytes()) {
				t.Fatal("legacy stream not detected as legacy")
			}
			if IsLegacyIndexStream(flat.Bytes()) {
				t.Fatal("flat stream misdetected as legacy")
			}

			fromLegacy, err := LoadDesigner(bytes.NewReader(legacy.Bytes()), ds, oracle)
			if err != nil {
				t.Fatalf("loading legacy stream: %v", err)
			}
			if got := suggestAll(t, fromLegacy, queries); !sameSuggestions(want, got) {
				t.Fatal("legacy-loaded designer answers differently")
			}
			// Migrate: re-save the legacy-loaded designer (what the server
			// does on startup) and load the flat bytes back.
			var resaved bytes.Buffer
			if err := fromLegacy.SaveIndex(&resaved); err != nil {
				t.Fatal(err)
			}
			if IsLegacyIndexStream(resaved.Bytes()) {
				t.Fatal("re-save kept the legacy format")
			}
			fromFlat, err := LoadDesigner(bytes.NewReader(resaved.Bytes()), ds, oracle)
			if err != nil {
				t.Fatalf("loading migrated stream: %v", err)
			}
			if got := suggestAll(t, fromFlat, queries); !sameSuggestions(want, got) {
				t.Fatal("migrated designer answers differently")
			}
		})
	}
}

// Hostile flat streams: every truncation and every damaged checksum must
// surface as ErrCorruptIndex — never a panic, never a silently wrong index.
func TestFlatHostileStreamsAllModes(t *testing.T) {
	for _, mode := range []Mode{Mode2D, ModeExact, ModeApprox} {
		t.Run(mode.String(), func(t *testing.T) {
			ds, oracle, d, _ := roundtripFixture(t, mode)
			var buf bytes.Buffer
			if err := d.SaveIndex(&buf); err != nil {
				t.Fatal(err)
			}
			good := buf.Bytes()

			// Truncations at every offset (strided for the bigger payloads).
			stride := 1
			if len(good) > 4096 {
				stride = 131
			}
			for cut := 0; cut < len(good); cut += stride {
				if _, err := LoadDesigner(bytes.NewReader(good[:cut]), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
					t.Fatalf("truncation at %d/%d: got %v, want ErrCorruptIndex", cut, len(good), err)
				}
			}

			// Flip a byte inside every section checksum. Layout: universal
			// header (40 bytes) plus the 8-byte revision word, then the flat
			// header (24 bytes, section count at offset 16), then 24-byte
			// table entries with the CRC at entry offset 12.
			hdr := indexPayloadOffset(good)
			payload := good[hdr:]
			nSections := int(binary.LittleEndian.Uint32(payload[16:20]))
			if nSections == 0 {
				t.Fatal("fixture produced no sections")
			}
			for i := 0; i < nSections; i++ {
				bad := append([]byte(nil), good...)
				bad[hdr+24+i*24+12] ^= 0xff
				if _, err := LoadDesigner(bytes.NewReader(bad), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
					t.Fatalf("flipped CRC of section %d: got %v, want ErrCorruptIndex", i, err)
				}
			}

			// Wrong section counts: one too many, absurdly many, zero.
			for _, count := range []uint32{uint32(nSections) + 1, 1 << 20, 0} {
				bad := append([]byte(nil), good...)
				binary.LittleEndian.PutUint32(bad[hdr+16:], count)
				if _, err := LoadDesigner(bytes.NewReader(bad), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
					t.Fatalf("section count %d: got %v, want ErrCorruptIndex", count, err)
				}
			}

			// Flip every byte of the first slab's data (past the table): the
			// CRC must catch each one.
			dataStart := hdr + 24 + nSections*24
			end := min(dataStart+64, len(good))
			for i := dataStart; i < end; i++ {
				bad := append([]byte(nil), good...)
				bad[i] ^= 0xff
				if _, err := LoadDesigner(bytes.NewReader(bad), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
					t.Fatalf("flipped slab byte %d: got %v, want ErrCorruptIndex", i, err)
				}
			}
		})
	}
}

// FuzzLoadDesigner drives arbitrary bytes through the full load path —
// universal header, flat section table, engine decode, structural
// validation. The invariant is simply: never panic, never hang; any return
// is either a working designer or an error.
func FuzzLoadDesigner(f *testing.F) {
	ds, oracle, exact, _ := roundtripFixture(f, ModeExact)
	_, _, approx, _ := roundtripFixture(f, ModeApprox)
	var exactFlat, exactLegacy, approxFlat bytes.Buffer
	if err := exact.SaveIndex(&exactFlat); err != nil {
		f.Fatal(err)
	}
	if err := exact.SaveIndexLegacy(&exactLegacy); err != nil {
		f.Fatal(err)
	}
	if err := approx.SaveIndex(&approxFlat); err != nil {
		f.Fatal(err)
	}
	f.Add(exactFlat.Bytes())
	f.Add(exactLegacy.Bytes())
	f.Add(approxFlat.Bytes())
	f.Add(exactFlat.Bytes()[:41])
	f.Add(exactFlat.Bytes()[:len(exactFlat.Bytes())-3])
	f.Add([]byte("FRNKIDX1 not really a header"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := LoadDesigner(bytes.NewReader(data), ds, oracle)
		if err == nil && d == nil {
			t.Fatal("nil designer without error")
		}
		if d != nil {
			d.Satisfiable()
		}
	})
}

// Startup auto-migration: a data dir holding a PR-2 gob store loads, serves
// identically, and is rewritten flat on disk — the slow decode is paid once.
func TestServerMigratesLegacyStoreOnLoad(t *testing.T) {
	srv, _ := testServer(t)
	dir := t.TempDir()
	ds, err := datagen.Biased(70, 2, 0.5, 0.3, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("d", ds); err != nil {
		t.Fatal(err)
	}
	spec := DesignerSpec{
		Dataset: "d",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
	}
	if err := srv.CreateDesigner("x", spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	want, err := srv.Suggest("x", []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	// Rewrite the index file in the legacy gob format, as a PR-2 node would
	// have left it.
	path := filepath.Join(dir, "x.index")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := spec.Oracle.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	d, err := LoadDesigner(bytes.NewReader(raw), ds, oracle)
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := d.SaveIndexLegacy(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	restored := NewServer()
	if err := restored.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Suggest("x", []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != want.Distance || !reflect.DeepEqual(got.Weights, want.Weights) {
		t.Fatalf("migrated answer %+v differs from original %+v", got, want)
	}
	migrated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if IsLegacyIndexStream(migrated) {
		t.Fatal("startup did not rewrite the legacy store in the flat format")
	}
	if _, err := LoadDesigner(bytes.NewReader(migrated), ds, oracle); err != nil {
		t.Fatalf("migrated file does not load: %v", err)
	}
}

// The handoff resume contract: serialization is deterministic, the resume
// offset lands on a section boundary (flatidx.CompletePrefix), and a suffix
// served through the endpoint's skipWriter stitches into a byte-identical
// stream that loads cleanly.
func TestHandoffResumeStitching(t *testing.T) {
	ds, oracle, d, queries := roundtripFixture(t, ModeExact)
	want := suggestAll(t, d, queries)
	var full bytes.Buffer
	if err := d.SaveIndex(&full); err != nil {
		t.Fatal(err)
	}
	good := full.Bytes()

	// Determinism: a second save is byte-identical — the precondition for
	// stitching a refetched suffix onto a kept prefix.
	var again bytes.Buffer
	if err := d.SaveIndex(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, again.Bytes()) {
		t.Fatal("SaveIndex is not deterministic; handoff resume would corrupt")
	}

	for _, cut := range []int{20, 50, len(good) / 3, len(good) - 5} {
		// The stream broke after cut bytes: keep up to the last complete
		// section boundary, exactly like fetchIndexResumable.
		keep := 0
		if hdr := indexPayloadOffset(good); cut > hdr {
			keep = hdr + flatidx.CompletePrefix(good[hdr:cut])
		}
		var rest bytes.Buffer
		if err := d.SaveIndex(&skipWriter{w: &rest, skip: int64(keep)}); err != nil {
			t.Fatal(err)
		}
		stitched := append(append([]byte(nil), good[:keep]...), rest.Bytes()...)
		if !bytes.Equal(stitched, good) {
			t.Fatalf("cut %d: stitched stream differs from the unbroken one", cut)
		}
		loaded, err := LoadDesigner(bytes.NewReader(stitched), ds, oracle)
		if err != nil {
			t.Fatalf("cut %d: stitched stream does not load: %v", cut, err)
		}
		if got := suggestAll(t, loaded, queries); !sameSuggestions(want, got) {
			t.Fatalf("cut %d: resumed index answers differently", cut)
		}
	}
}

// The fingerprint must react to scoring values, type values, and names —
// and must be stable across calls.
func TestDatasetFingerprint(t *testing.T) {
	base := func() *Dataset {
		ds, err := NewDataset([]string{"a", "b"}, [][]float64{{1, 2}, {3, 4}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.AddTypeAttr("g", []string{"x", "y"}, []int{0, 1}); err != nil {
			t.Fatal(err)
		}
		return ds
	}
	ds := base()
	if ds.Fingerprint() != base().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	valChanged, _ := NewDataset([]string{"a", "b"}, [][]float64{{1, 2}, {3, 5}})
	valChanged.AddTypeAttr("g", []string{"x", "y"}, []int{0, 1})
	if ds.Fingerprint() == valChanged.Fingerprint() {
		t.Error("fingerprint ignored a scoring value change")
	}
	nameChanged, _ := NewDataset([]string{"a", "c"}, [][]float64{{1, 2}, {3, 4}})
	nameChanged.AddTypeAttr("g", []string{"x", "y"}, []int{0, 1})
	if ds.Fingerprint() == nameChanged.Fingerprint() {
		t.Error("fingerprint ignored a scoring name change")
	}
	typeChanged := base()
	// Adding one more type attribute must change the digest.
	typeChanged.AddTypeAttr("h", []string{"p"}, []int{0, 0})
	if ds.Fingerprint() == typeChanged.Fingerprint() {
		t.Error("fingerprint ignored an added type attribute")
	}
}
