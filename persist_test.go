package fairrank

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"fairrank/internal/datagen"
)

// roundtripFixture builds a designer in the given mode over a small dataset
// with a matching oracle, plus a set of probe queries.
func roundtripFixture(t *testing.T, mode Mode) (*Dataset, Oracle, *Designer, [][]float64) {
	t.Helper()
	var (
		ds  *Dataset
		err error
	)
	d2 := mode == Mode2D
	if d2 {
		ds, err = datagen.Biased(80, 2, 0.5, 0.3, 1, 11)
	} else {
		ds, err = datagen.Uniform(24, 3, 0.5, 11)
	}
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: mode, Seed: 3}
	if mode == ModeApprox {
		cfg.Cells = 400
		cfg.CellRegionCap = 64
	}
	d, err := NewDesigner(ds, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	var queries [][]float64
	for q := 0; q < 12; q++ {
		w := make([]float64, ds.D())
		for k := range w {
			w[k] = r.Float64() + 0.01
		}
		queries = append(queries, w)
	}
	return ds, oracle, d, queries
}

// Every engine's index must roundtrip through SaveIndex/LoadDesigner with
// byte-identical Suggest answers.
func TestSaveLoadRoundtripAllModes(t *testing.T) {
	for _, mode := range []Mode{Mode2D, ModeExact, ModeApprox} {
		t.Run(mode.String(), func(t *testing.T) {
			ds, oracle, d, queries := roundtripFixture(t, mode)
			var buf bytes.Buffer
			if err := d.SaveIndex(&buf); err != nil {
				t.Fatalf("SaveIndex(%v): %v", mode, err)
			}
			loaded, err := LoadDesigner(bytes.NewReader(buf.Bytes()), ds, oracle)
			if err != nil {
				t.Fatalf("LoadDesigner(%v): %v", mode, err)
			}
			if loaded.Mode() != mode {
				t.Fatalf("loaded mode %v, want %v", loaded.Mode(), mode)
			}
			if loaded.Satisfiable() != d.Satisfiable() {
				t.Fatal("satisfiability changed by save/load")
			}
			for _, w := range queries {
				s1, err1 := d.Suggest(w)
				s2, err2 := loaded.Suggest(w)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("error mismatch for %v: %v vs %v", w, err1, err2)
				}
				if err1 != nil {
					if !errors.Is(err1, ErrUnsatisfiable) {
						t.Fatal(err1)
					}
					continue
				}
				if s1.Distance != s2.Distance || s1.AlreadyFair != s2.AlreadyFair {
					t.Fatalf("answer changed by save/load: %+v vs %+v", s1, s2)
				}
				for k := range s1.Weights {
					if s1.Weights[k] != s2.Weights[k] {
						t.Fatalf("weights not byte-identical: %v vs %v", s1.Weights, s2.Weights)
					}
				}
			}
		})
	}
}

func TestLoadDesignerCorruptStream(t *testing.T) {
	ds, oracle, d, _ := roundtripFixture(t, Mode2D)
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Not an index at all.
	if _, err := LoadDesigner(bytes.NewReader([]byte("not an index stream")), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("garbage stream: got %v, want ErrCorruptIndex", err)
	}
	// Truncated inside the header.
	if _, err := LoadDesigner(bytes.NewReader(good[:10]), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("truncated header: got %v, want ErrCorruptIndex", err)
	}
	// Truncated inside the engine payload: the header parses, gob fails.
	if _, err := LoadDesigner(bytes.NewReader(good[:len(good)-7]), ds, oracle); err == nil {
		t.Error("truncated payload should fail to load")
	}
	// Flipped bytes in the engine payload.
	bad := append([]byte(nil), good...)
	for i := len(bad) - 20; i < len(bad)-12; i++ {
		bad[i] ^= 0xff
	}
	if _, err := LoadDesigner(bytes.NewReader(bad), ds, oracle); err == nil {
		t.Error("corrupted payload should fail to load")
	}
	// Empty stream.
	if _, err := LoadDesigner(bytes.NewReader(nil), ds, oracle); !errors.Is(err, ErrCorruptIndex) {
		t.Errorf("empty stream: got %v, want ErrCorruptIndex", err)
	}
}

func TestLoadDesignerWrongDataset(t *testing.T) {
	ds, oracle, d, _ := roundtripFixture(t, Mode2D)
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}

	// Same shape, different values: fingerprint must catch it.
	other, err := datagen.Biased(80, 2, 0.5, 0.3, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDesigner(bytes.NewReader(buf.Bytes()), other, oracle); !errors.Is(err, ErrDatasetMismatch) {
		t.Errorf("different data: got %v, want ErrDatasetMismatch", err)
	}
	// Different shape: caught before the fingerprint.
	smaller, err := datagen.Biased(40, 2, 0.5, 0.3, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDesigner(bytes.NewReader(buf.Bytes()), smaller, oracle); !errors.Is(err, ErrDatasetMismatch) {
		t.Errorf("different n: got %v, want ErrDatasetMismatch", err)
	}
	// The dataset it was built for still loads.
	if _, err := LoadDesigner(bytes.NewReader(buf.Bytes()), ds, oracle); err != nil {
		t.Errorf("original dataset should load: %v", err)
	}
}

// Query-time settings (RefineQueries) must survive the save/load cycle, or
// a restarted server answers with a different quality than the one that
// built the index.
func TestSaveLoadPreservesRefineQueries(t *testing.T) {
	ds, err := datagen.Uniform(24, 3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDesigner(ds, oracle, Config{
		Mode: ModeApprox, Cells: 400, Seed: 3, CellRegionCap: 64, RefineQueries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesigner(&buf, ds, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.refine {
		t.Fatal("RefineQueries lost in the save/load roundtrip")
	}
}

// The fingerprint must react to scoring values, type values, and names —
// and must be stable across calls.
func TestDatasetFingerprint(t *testing.T) {
	base := func() *Dataset {
		ds, err := NewDataset([]string{"a", "b"}, [][]float64{{1, 2}, {3, 4}})
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.AddTypeAttr("g", []string{"x", "y"}, []int{0, 1}); err != nil {
			t.Fatal(err)
		}
		return ds
	}
	ds := base()
	if ds.Fingerprint() != base().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	valChanged, _ := NewDataset([]string{"a", "b"}, [][]float64{{1, 2}, {3, 5}})
	valChanged.AddTypeAttr("g", []string{"x", "y"}, []int{0, 1})
	if ds.Fingerprint() == valChanged.Fingerprint() {
		t.Error("fingerprint ignored a scoring value change")
	}
	nameChanged, _ := NewDataset([]string{"a", "c"}, [][]float64{{1, 2}, {3, 4}})
	nameChanged.AddTypeAttr("g", []string{"x", "y"}, []int{0, 1})
	if ds.Fingerprint() == nameChanged.Fingerprint() {
		t.Error("fingerprint ignored a scoring name change")
	}
	typeChanged := base()
	// Adding one more type attribute must change the digest.
	typeChanged.AddTypeAttr("h", []string{"p"}, []int{0, 0})
	if ds.Fingerprint() == typeChanged.Fingerprint() {
		t.Error("fingerprint ignored an added type attribute")
	}
}
