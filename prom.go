package fairrank

import (
	"net/http"
	"sort"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/obs"
	"fairrank/internal/service"
)

// Prometheus text exposition of /metrics (?format=prometheus). The same
// counters as the JSON document, renamed into Prometheus conventions:
// per-designer serving counters and the latency histogram (cumulative le
// buckets in seconds) with p50/p95/p99 gauges, planner gauges, and the
// node's cluster series — gossip rounds and digest-diff volumes, converge
// and handoff durations, handoff bytes, per-peer forwards and health, ring
// version. Rendered by internal/obs.Prom; no client library involved.

// clusterMetricsJSON is the "cluster" section of the JSON /metrics document.
type clusterMetricsJSON struct {
	RingVersion    uint64                `json:"ring_version"`
	MetaEntries    int                   `json:"meta_entries"`
	MetaTombstones int                   `json:"meta_tombstones"`
	MetaGCed       int64                 `json:"meta_tombstones_gced"`
	MetaApplied    int64                 `json:"meta_applied"`
	MetaRejected   int64                 `json:"meta_rejected"`
	Stats          cluster.StatsSnapshot `json:"stats"`
	Peers          []peerMetricsJSON     `json:"peers,omitempty"`
}

type peerMetricsJSON struct {
	ID              string `json:"id"`
	Healthy         bool   `json:"healthy"`
	Forwards        int64  `json:"forwards"`
	ForwardFailures int64  `json:"forward_failures"`
}

func (s *Server) clusterMetrics() clusterMetricsJSON {
	applied, rejected := s.meta.ApplyCounts()
	cm := clusterMetricsJSON{
		RingVersion:    s.router.RingVersion(),
		MetaEntries:    s.meta.Len(),
		MetaTombstones: s.meta.TombstoneCount(),
		MetaGCed:       s.meta.TombstonesGCed(),
		MetaApplied:    applied,
		MetaRejected:   rejected,
		Stats:          s.router.Stats().Snapshot(),
	}
	for _, p := range s.router.Peers() {
		fw, ff := p.ForwardCounts()
		cm.Peers = append(cm.Peers, peerMetricsJSON{
			ID: p.Member().ID, Healthy: p.Healthy(), Forwards: fw, ForwardFailures: ff,
		})
	}
	sort.Slice(cm.Peers, func(i, j int) bool { return cm.Peers[i].ID < cm.Peers[j].ID })
	return cm
}

// writePrometheus renders the full node state as Prometheus text exposition.
func (s *Server) writePrometheus(w http.ResponseWriter) {
	p := obs.NewProm()

	p.Gauge("fairrank_uptime_seconds", "Seconds since this node started.",
		time.Since(s.start).Seconds())
	p.Gauge("fairrank_datasets", "Registered datasets on this node.",
		float64(len(s.DatasetIDs())))

	ids := s.DesignerIDs()
	p.Gauge("fairrank_designers", "Designer specs known to this node (remote-owned included).",
		float64(len(ids)))
	bounds := service.BucketBounds()
	boundsSec := make([]float64, len(bounds))
	for i, b := range bounds {
		boundsSec[i] = b.Seconds()
	}
	for _, id := range ids {
		st, err := s.DesignerStatus(id)
		if err != nil || st.Status == service.StatusRemote {
			continue // the owner exposes its serving counters
		}
		m := st.Metrics
		l := []string{"designer", id}
		p.Counter("fairrank_designer_queries_total", "Single suggest queries served.", float64(m.Queries), l...)
		p.Counter("fairrank_designer_batches_total", "Suggest batches served.", float64(m.Batches), l...)
		p.Counter("fairrank_designer_batch_queries_total", "Queries served through batches.", float64(m.BatchQueries), l...)
		p.Counter("fairrank_designer_errors_total", "Queries that returned an error.", float64(m.Errors), l...)
		p.Counter("fairrank_designer_cache_hits_total", "Queries answered from the suggest memo cache.", float64(m.CacheHits), l...)
		p.Counter("fairrank_designer_cache_misses_total", "Cacheable queries that went to the engine.", float64(m.CacheMisses), l...)
		p.Counter("fairrank_designer_resume_hits_total", "Kernel lookups resumed from a locality cursor.", float64(m.ResumeHits), l...)
		p.Counter("fairrank_designer_rebuilds_total", "Index rebuilds since creation.", float64(st.Rebuilds), l...)
		p.Gauge("fairrank_designer_generation", "Engine swap generation (cache invalidation epoch).", float64(st.Generation), l...)
		p.Gauge("fairrank_designer_batch_dedup_rate", "Fraction of batch slots answered by duplicate fan-out.", m.BatchDedupRate, l...)
		p.Gauge("fairrank_designer_planned_chunk_size", "Most recent planner chunk size.", float64(m.PlannedChunkSize), l...)
		if len(m.LatencyBuckets) == len(boundsSec)+1 {
			counts := make([]int64, len(m.LatencyBuckets))
			for i, b := range m.LatencyBuckets {
				counts[i] = b.Count
			}
			p.Histogram("fairrank_suggest_latency_seconds",
				"Per-query suggest latency (batches amortized per query).",
				boundsSec, counts, float64(m.LatencySumNs)/1e9, l...)
		}
		for _, q := range []struct {
			q  string
			ns int64
		}{{"0.5", m.LatencyP50Ns}, {"0.95", m.LatencyP95Ns}, {"0.99", m.LatencyP99Ns}} {
			p.Gauge("fairrank_suggest_latency_quantile_seconds",
				"Suggest latency quantiles estimated from the histogram.",
				float64(q.ns)/1e9, "designer", id, "quantile", q.q)
		}
	}

	cm := s.clusterMetrics()
	p.Gauge("fairrank_ring_version", "Version of the gossiped ring membership this node serves on.",
		float64(cm.RingVersion))
	p.Gauge("fairrank_meta_entries", "Entries in the replicated metadata store (tombstones included).",
		float64(cm.MetaEntries))
	p.Gauge("fairrank_meta_tombstones", "Live tombstones awaiting cluster-wide acknowledgement.",
		float64(cm.MetaTombstones))
	p.Counter("fairrank_meta_tombstones_gced_total", "Tombstones compacted after every member acked them.",
		float64(cm.MetaGCed))
	p.Counter("fairrank_meta_applied_total", "Remote metadata entries accepted by Apply.", float64(cm.MetaApplied))
	p.Counter("fairrank_meta_rejected_total", "Remote metadata entries rejected as stale or duplicate.", float64(cm.MetaRejected))

	st := cm.Stats
	p.Counter("fairrank_gossip_rounds_total", "Completed anti-entropy digest exchanges.", float64(st.GossipRounds))
	p.Counter("fairrank_gossip_failures_total", "Anti-entropy exchanges that errored.", float64(st.GossipFailures))
	p.Counter("fairrank_gossip_entries_pulled_total", "Metadata entries pulled in digest diffs.", float64(st.GossipEntriesPulled))
	p.Counter("fairrank_gossip_entries_pushed_total", "Metadata entries pushed in digest diffs.", float64(st.GossipEntriesPushed))
	p.Summary("fairrank_gossip_converge_seconds", "Wall time of anti-entropy exchanges.",
		float64(st.GossipNsTotal)/1e9, st.GossipRounds)

	p.Counter("fairrank_handoff_pulls_total", "Index handoffs pulled from previous owners.", float64(st.HandoffPulls))
	p.Counter("fairrank_handoff_pushes_total", "Index handoffs pushed while draining.", float64(st.HandoffPushes))
	p.Counter("fairrank_handoff_failures_total", "Index handoffs that fell back to rebuild.", float64(st.HandoffFailures))
	p.Counter("fairrank_handoff_bytes_total", "Index bytes received on handoff endpoints.",
		float64(st.HandoffBytesIn), "direction", "in")
	p.Counter("fairrank_handoff_bytes_total", "Index bytes served on handoff endpoints.",
		float64(st.HandoffBytesOut), "direction", "out")
	p.Counter("fairrank_handoff_resumes_total", "Broken handoff streams resumed from a section boundary.",
		float64(st.HandoffResumes))
	p.Summary("fairrank_handoff_seconds", "Wall time of index transfers (fetch + load).",
		float64(st.HandoffNsTotal)/1e9, st.HandoffPulls+st.HandoffPushes)

	p.Counter("fairrank_patch_total", "Dataset patches applied on this node.",
		float64(s.patchTotal.Load()))
	p.Counter("fairrank_patch_designer_total", "Designer indexes spliced incrementally by a dataset patch.",
		float64(s.patchRepairs.Load()), "path", "repair")
	p.Counter("fairrank_patch_designer_total", "Designer indexes rebuilt by a dataset patch (churn above threshold, or no retained build state).",
		float64(s.patchRebuilds.Load()), "path", "rebuild")
	repairCounts, repairSum := s.patchDur.snapshot()
	p.Histogram("fairrank_patch_repair_seconds", "Latency of incremental index repairs (rebuild fallbacks excluded).",
		patchBoundsSec, repairCounts, repairSum)

	p.Gauge("fairrank_replica_factor", "Effective read replicas per designer (gossiped -replicas value).",
		float64(s.replicaFactor()))
	p.Counter("fairrank_replica_pushes_total", "Sealed indexes pushed to followers by owners on this node.",
		float64(st.ReplicaPushes))
	p.Counter("fairrank_replica_pulls_total", "Missed replica pushes repaired by pulling from the owner.",
		float64(st.ReplicaPulls))
	p.Counter("fairrank_replica_promotions_total", "Replica copies activated into serving on ownership change (rebuilds avoided).",
		float64(st.ReplicaPromotions))
	p.Counter("fairrank_replica_reads_total", "Suggest reads answered from this node's replica copies.",
		float64(st.ReplicaReadsLocal), "path", "local")
	p.Counter("fairrank_replica_reads_total", "Suggest reads fanned out to another member of the replica set.",
		float64(st.ReplicaReadsForwarded), "path", "forwarded")
	p.Counter("fairrank_replica_stale_forwards_total", "Reads refused by the stale-read guard and sent to the owner.",
		float64(st.ReplicaStaleForwards))
	lags := s.replicaLags()
	lagIDs := make([]string, 0, len(lags))
	for id := range lags {
		lagIDs = append(lagIDs, id)
	}
	sort.Strings(lagIDs)
	for _, id := range lagIDs {
		p.Gauge("fairrank_replica_lag_generations",
			"Generations this node's replica copy lags the owner's publication (0 = caught up).",
			float64(lags[id]), "designer", id)
	}

	for _, peer := range cm.Peers {
		p.Counter("fairrank_forwards_total", "Requests proxied to the peer.", float64(peer.Forwards), "peer", peer.ID)
		p.Counter("fairrank_forward_failures_total", "Proxied requests that failed at the transport.", float64(peer.ForwardFailures), "peer", peer.ID)
		healthy := 0.0
		if peer.Healthy {
			healthy = 1
		}
		p.Gauge("fairrank_peer_healthy", "1 while the peer is believed reachable.", healthy, "peer", peer.ID)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	p.WriteTo(w) //nolint:errcheck // best-effort write to the client
}
