package fairrank

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/obs"
	"fairrank/internal/service"
)

// Read-replica fan-out (docs/REPLICATION.md). The pieces, in request order:
//
//   - routeSuggest spreads Suggest/SuggestBatch reads across a designer's
//     replica set, guarded so a follower never answers from a copy older
//     than the owner's publication.
//   - replicaSync is the owner-side push / follower-side repair loop, run
//     from every reconcile tick: the owner publishes the generation it
//     serves as a gossiped "replica/<id>" entry, then streams the sealed
//     index to each follower; a follower that missed a push pulls it back.
//   - promoteReplica activates a follower's copy when ownership moves here
//     (owner died, or views disagree) — failover costs index activation,
//     not a rebuild. Rebuild remains the zero-replica fallback.
//
// The factor k is gossiped (replicas/config), so one flagged node is enough
// to switch the whole cluster on.

// originateReplicaConfig records (and gossips, via anti-entropy) the
// replication factor. Called at construction and again after LoadDir, so the
// flag's value supersedes every restored version.
func (s *Server) originateReplicaConfig(k int) {
	s.replicaK.Store(int64(k))
	payload, err := json.Marshal(cluster.ReplicaConfig{K: k})
	if err != nil {
		return // unreachable: the payload is one int
	}
	s.meta.Put(cluster.ReplicaConfigKey, payload)
}

// replicaFactor returns the effective follower count per designer.
func (s *Server) replicaFactor() int { return int(s.replicaK.Load()) }

// publishedReplica returns the designer's publication entry — the owner and
// generation followers are allowed to serve. ok is false when nothing was
// published (or the entry is tombstoned/garbled), which followers must treat
// as "forward to the owner".
func (s *Server) publishedReplica(id string) (cluster.ReplicaInfo, bool) {
	e, ok := s.meta.Get(cluster.ReplicaMetaKey(id))
	if !ok || e.Deleted || len(e.Payload) == 0 {
		return cluster.ReplicaInfo{}, false
	}
	var info cluster.ReplicaInfo
	if err := json.Unmarshal(e.Payload, &info); err != nil {
		return cluster.ReplicaInfo{}, false
	}
	return info, true
}

// promoteReplica activates the local replica copy of id into the shard
// registry, preserving its generation — the promote-not-rebuild failover
// path. It refuses stale copies (generation below the publication): the
// publication never lowers, so activating a stale copy would pin stale
// answers forever, while falling through to handoff/rebuild converges.
func (s *Server) promoteReplica(id string, build service.BuildFunc) (*service.Entry, bool) {
	rep, ok := s.replicas.Get(id)
	if !ok {
		return nil, false
	}
	if pub, has := s.publishedReplica(id); has && rep.Generation < pub.Generation {
		return nil, false
	}
	entry, err := s.shard(id).CreateReadyGen(id, rep.Engine, build, rep.Generation)
	if err != nil {
		if entry, ok := s.shard(id).Get(id); ok {
			return entry, true // lost the activation race; an index serves
		}
		return nil, false
	}
	s.replicas.Remove(id)
	s.router.Stats().ReplicaPromotions.Add(1)
	s.logf("cluster: promote: designer %q activated local replica at generation %d (no rebuild)",
		id, rep.Generation)
	return entry, true
}

// replicaTick schedules one replicaSync pass on a background goroutine,
// coalescing with a pass already in flight so a slow push can never back up
// the gossip loop that triggers it.
func (s *Server) replicaTick() {
	if s.replicaFactor() <= 0 || s.router.SingleNode() {
		return
	}
	if !s.replicaBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.replicaBusy.Store(false)
		s.replicaSync()
	}()
}

// replicaSync walks every known designer once and plays this node's role in
// its replica set: owners publish and push, followers repair missed pushes.
func (s *Server) replicaSync() {
	k := s.replicaFactor()
	if k <= 0 {
		return
	}
	self := s.router.NodeID()
	for _, id := range s.DesignerIDs() {
		set := s.router.ReplicaSet(id, k)
		if len(set) == 0 {
			continue
		}
		if set[0].ID == self {
			s.replicaPublishPush(id, set)
			continue
		}
		for _, m := range set[1:] {
			if m.ID == self {
				s.replicaPullRepair(id, set[0])
				break
			}
		}
	}
}

// replicaPublishPush is the owner leg of replicaSync for one designer:
// publish the serving generation (metadata first — a follower may never
// serve bytes its publication does not cover), then push the sealed index to
// every follower that has not acked this generation yet.
func (s *Server) replicaPublishPush(id string, set []cluster.Member) {
	entry, ok := s.shard(id).Get(id)
	if !ok {
		return
	}
	eng, err := entry.Engine()
	if err != nil {
		return // still building or failed; publish once an index serves
	}
	self := s.router.NodeID()
	stats := s.router.Stats()
	gen := entry.Generation()
	pub, hasPub := s.publishedReplica(id)
	if hasPub && gen < pub.Generation {
		// This owner inherited the designer with an older index — a rebuild
		// after a failed promote, or a restart that loaded a pre-publication
		// save. Whatever it serves must supersede the old publication, or
		// followers holding higher-generation copies would keep serving them
		// while the owner answers from this index. Same owner means same
		// persisted index, so matching the published generation suffices; a
		// different owner's index may differ and takes the next generation.
		next := pub.Generation
		if pub.Owner != self {
			next++
		}
		entry.AdvanceGeneration(next)
		gen = entry.Generation()
	}
	if !hasPub || pub.Generation < gen || pub.Owner != self {
		payload, merr := json.Marshal(cluster.ReplicaInfo{Owner: self, Generation: gen})
		if merr != nil {
			return
		}
		e := s.meta.Put(cluster.ReplicaMetaKey(id), payload)
		if s.designerDeleted(id) {
			// A DELETE interleaved: never leave a live publication above the
			// designer's tombstone.
			s.meta.Delete(cluster.ReplicaMetaKey(id))
			return
		}
		s.replicateEntries(context.Background(), []cluster.MetaEntry{e})
		s.logf("cluster: replica: designer %q generation %d published (v%d)", id, gen, e.Version)
	}
	for _, m := range set[1:] {
		s.mu.RLock()
		acked := s.pushed[id][m.ID]
		s.mu.RUnlock()
		if acked >= gen {
			continue
		}
		peer, ok := s.router.Peer(m.ID)
		if !ok || !peer.Healthy() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(eng.SaveIndex(pw)) }()
		cr := &obs.CountingReader{R: pr}
		err := peer.PushReplica(ctx, self, id, gen, cr)
		cancel()
		stats.HandoffBytesOut.Add(cr.N())
		if err != nil {
			var se *cluster.StatusError
			if !errors.As(err, &se) {
				peer.MarkUnhealthy(err)
			}
			s.logf("cluster: replica: pushing %q generation %d to %s failed: %v (pull repair will retry)",
				id, gen, m.ID, err)
			continue
		}
		stats.ReplicaPushes.Add(1)
		s.mu.Lock()
		if s.pushed[id] == nil {
			s.pushed[id] = make(map[string]uint64)
		}
		s.pushed[id][m.ID] = gen
		s.mu.Unlock()
		s.logf("cluster: replica: designer %q generation %d pushed to %s", id, gen, m.ID)
	}
}

// replicaPullRepair is the follower leg of replicaSync for one designer:
// when the published generation is ahead of the local copy (a push this node
// missed — it was down, or just joined the set), pull the index from the
// current owner. Push is the fast path; this is the repair path.
func (s *Server) replicaPullRepair(id string, owner cluster.Member) {
	pub, ok := s.publishedReplica(id)
	if !ok || s.replicas.Generation(id) >= pub.Generation {
		return
	}
	if _, held := s.shard(id).Get(id); held {
		// This node serves id from its registry (ownership flapped here
		// once); that warm standby outranks a replica copy.
		return
	}
	self := s.router.NodeID()
	if owner.ID == self {
		return
	}
	s.mu.RLock()
	spec, known := s.specs[id]
	s.mu.RUnlock()
	if !known {
		return
	}
	peer, ok := s.router.Peer(owner.ID)
	if !ok || !peer.Healthy() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rc, gen, err := peer.FetchIndex(ctx, self, id, 0)
	if err != nil {
		var se *cluster.StatusError
		if !errors.As(err, &se) {
			peer.MarkUnhealthy(err)
		}
		return
	}
	cr := &obs.CountingReader{R: rc}
	d, lerr := s.loadDesignerStream(cr, spec)
	rc.Close()
	s.router.Stats().HandoffBytesIn.Add(cr.N())
	if lerr != nil {
		s.logf("cluster: replica: pulling %q from %s failed to load: %v", id, owner.ID, lerr)
		return
	}
	if gen == 0 {
		gen = pub.Generation
	}
	if s.replicas.Set(id, &designerEngine{d: d}, gen) {
		s.router.Stats().ReplicaPulls.Add(1)
		s.logf("cluster: replica: designer %q generation %d pulled from %s (repair)", id, gen, owner.ID)
	}
}

// replicaLags reports, for every designer this node follows, how many
// generations its copy lags the publication (0 = caught up) — the
// fairrank_replica_lag_generations gauge.
func (s *Server) replicaLags() map[string]uint64 {
	k := s.replicaFactor()
	if k <= 0 {
		return nil
	}
	self := s.router.NodeID()
	lags := make(map[string]uint64)
	for _, id := range s.DesignerIDs() {
		for _, m := range s.router.ReplicaSet(id, k)[1:] {
			if m.ID != self {
				continue
			}
			pub, ok := s.publishedReplica(id)
			if !ok {
				break
			}
			lag := uint64(0)
			if local := s.replicas.Generation(id); local < pub.Generation {
				lag = pub.Generation - local
			}
			lags[id] = lag
			break
		}
	}
	return lags
}

// routeSuggest routes one Suggest/SuggestBatch read across id's replica set,
// returning true when the response has been written (served by a follower
// copy, or forwarded). false means the caller serves from local registry
// state, exactly as before replication: with k=0 this delegates to the
// plain forward-to-owner path unchanged.
func (s *Server) routeSuggest(w http.ResponseWriter, r *http.Request, id string, body []byte) bool {
	k := s.replicaFactor()
	if k <= 0 || s.router.SingleNode() {
		return s.forwardToOwner(w, r, id, body)
	}
	if r.Header.Get(cluster.ReplicaFinalHeader) != "" {
		return false // second hop of a stale-follower bounce: serve here, period
	}
	self := s.router.NodeID()
	stats := s.router.Stats()
	rec := obs.FromContext(r.Context())
	forwardedHop := r.Header.Get(cluster.ForwardHeader) != ""
	for {
		set := s.router.ReplicaSet(id, k)
		plan, target := cluster.PlanRead(self, set,
			s.replicas.Generation(id), s.publishedGeneration(id), s.replicaRR.Add(1))
		switch plan {
		case cluster.ReadLocalOwner:
			return false
		case cluster.ReadLocalReplica:
			rep, ok := s.replicas.Get(id)
			if !ok {
				return false // copy vanished under us; registry path answers
			}
			stats.ReplicaReadsLocal.Add(1)
			s.serveSuggestReplica(w, r, id, body, rep)
			return true
		case cluster.ReadStaleForward:
			// The stale-read guard: never answer from a copy behind the
			// publication. An already-forwarded read gets one final marked
			// hop to the owner (bounding every read to two forwards).
			stats.ReplicaStaleForwards.Add(1)
			if forwardedHop {
				r.Header.Set(cluster.ReplicaFinalHeader, self)
			}
		case cluster.ReadForwardOwner, cluster.ReadForwardReplica:
			if forwardedHop {
				return false // disagreeing views bounce at most once
			}
			stats.ReplicaReadsForwarded.Add(1)
		}
		if target.ID == "" || target.ID == self {
			return false
		}
		peer, ok := s.router.Peer(target.ID)
		if !ok {
			return false
		}
		sp := rec.Start("forward")
		if err := peer.Forward(w, r, self, body); err != nil {
			sp.EndNote("failed peer=" + peer.Member().ID)
			if r.Context().Err() != nil {
				return true // requester is gone; don't poison peer health
			}
			peer.MarkUnhealthy(err)
			continue // re-plan against the shrunk healthy set
		}
		sp.EndNote("peer=" + peer.Member().ID)
		return true
	}
}

// publishedGeneration is publishedReplica reduced to the number PlanRead
// wants (0 = no publication).
func (s *Server) publishedGeneration(id string) uint64 {
	pub, ok := s.publishedReplica(id)
	if !ok {
		return 0
	}
	return pub.Generation
}

// serveSuggestReplica answers a suggest request straight from a follower's
// replica copy. The engine is identical to the owner's (same pushed bytes,
// deterministic answers), so the JSON is byte-identical; what a replica read
// skips is the owner-side memo cache and per-designer metrics — replica
// traffic shows up in the fairrank_replica_reads_total split instead.
func (s *Server) serveSuggestReplica(w http.ResponseWriter, r *http.Request, id string, body []byte, rep service.Replica) {
	_ = id
	var req suggestRequest
	if !decodeRaw(w, body, &req) {
		return
	}
	rec := obs.FromContext(r.Context())
	switch {
	case req.Weights != nil && req.Batch != nil:
		writeError(w, http.StatusBadRequest, errors.New(`"weights" and "batch" are mutually exclusive`))
	case req.Weights != nil:
		sp := rec.Start("kernel")
		sug, err := rep.Engine.Suggest(req.Weights)
		sp.End()
		if err != nil {
			writeError(w, errorStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, suggestionJSON{
			Weights: sug.Weights, Distance: sug.Distance, AlreadyFair: sug.AlreadyFair,
		})
	case req.Batch != nil:
		sp := rec.Start("kernel")
		var results []service.Result
		if cb, ok := rep.Engine.(service.ContextBatcher); ok {
			results = cb.SuggestBatchCtx(r.Context(), req.Batch)
		} else {
			results = rep.Engine.SuggestBatch(req.Batch)
		}
		sp.End()
		out := make([]suggestionJSON, len(results))
		for i, res := range results {
			if res.Err != nil {
				out[i] = suggestionJSON{Error: res.Err.Error()}
				continue
			}
			out[i] = suggestionJSON{
				Weights:     res.Suggestion.Weights,
				Distance:    res.Suggestion.Distance,
				AlreadyFair: res.Suggestion.AlreadyFair,
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	default:
		writeError(w, http.StatusBadRequest, errors.New(`body needs "weights" or "batch"`))
	}
}

// handleReplicaPut receives an owner's replica push: the sealed index stream
// plus its generation header, stored in the replica store (NOT activated —
// that is what distinguishes it from a handoff push; the registry stays the
// owner's). The designer's spec must already be known here.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	spec, known := s.specs[id]
	s.mu.RUnlock()
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: designer %q (push metadata before indexes)", ErrUnknownID, id))
		return
	}
	gen, _ := strconv.ParseUint(r.Header.Get(cluster.GenerationHeader), 10, 64)
	cr := &obs.CountingReader{R: http.MaxBytesReader(w, r.Body, 1<<30)}
	d, err := s.loadDesignerStream(cr, spec)
	s.router.Stats().HandoffBytesIn.Add(cr.N())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if s.designerDeleted(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: designer %q was deleted", ErrUnknownID, id))
		return
	}
	stored := s.replicas.Set(id, &designerEngine{d: d}, gen)
	if stored {
		s.logf("cluster: replica: designer %q generation %d received from %s",
			id, gen, r.Header.Get(cluster.ForwardHeader))
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "generation": gen, "stored": stored})
}
