#!/usr/bin/env bash
# End-to-end smoke test for the fairrankd cluster: boot a 2-node cluster,
# drive the JSON API over real HTTP (dataset create → designer builds →
# suggest), then JOIN a third node at runtime and require index handoff (the
# migrated designer must be loaded from its old owner, never rebuilt), a
# byte-identical answer through the new owner, a clean SIGTERM drain-leave of
# the third node, and finally a clean SIGTERM shutdown of the rest with
# persisted state. A final stage boots a fresh 3-node cluster with
# -replicas 1, kill -9s a designer's owner mid-traffic, and requires
# promote-not-rebuild failover with unchanged answers (docs/REPLICATION.md).
# CI runs this as its own job; it also works locally:
#
#   ./scripts/smoke.sh [base-port]
set -euo pipefail

port0="${1:-18080}"
port1=$((port0 + 1))
port2=$((port0 + 2))
port3=$((port0 + 3))
port4=$((port0 + 4))
port5=$((port0 + 5))
base0="http://127.0.0.1:${port0}"
base1="http://127.0.0.1:${port1}"
base2="http://127.0.0.1:${port2}"
base3="http://127.0.0.1:${port3}"
base4="http://127.0.0.1:${port4}"
base5="http://127.0.0.1:${port5}"
workdir="$(mktemp -d)"
bin="${workdir}/fairrankd"

cleanup() {
  for p in "${pid0:-}" "${pid1:-}" "${pid2:-}" "${pid3:-}" "${pid4:-}" "${pid5:-}" "${traffic_pid:-}" "${patch_traffic_pid:-}"; do
    if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
      kill -9 "$p" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_healthy() { # url pid name
  for _ in $(seq 1 150); do
    if curl -fs "$1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then
      echo "$3 exited before becoming healthy" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "$3 never became healthy" >&2
  exit 1
}

echo "== building fairrankd"
go build -o "$bin" ./cmd/fairrankd

echo "== starting a 2-node cluster (node-0 :${port0}, node-1 :${port1})"
"$bin" -addr "127.0.0.1:${port0}" -node-id node-0 -shards 2 \
  -peers "node-1=${base1}" -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data0" >"${workdir}/node0.log" 2>&1 &
pid0=$!
"$bin" -addr "127.0.0.1:${port1}" -node-id node-1 -shards 2 \
  -peers "node-0=${base0}" -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data1" >"${workdir}/node1.log" 2>&1 &
pid1=$!
wait_healthy "$base0" "$pid0" node-0
wait_healthy "$base1" "$pid1" node-1
echo "== both nodes healthy"

# A small 2-attribute dataset where the protected group scores high, so fair
# functions exist and suggest has an easy answer.
curl -fs -X POST "${base0}/v1/datasets" -H 'Content-Type: application/json' -d '{
  "id": "smoke",
  "dataset": {
    "scoring": ["merit", "impact"],
    "rows": [[1.00, 0.91], [0.93, 1.02], [0.88, 0.97], [0.96, 0.84],
             [0.41, 0.33], [0.28, 0.44], [0.36, 0.21], [0.19, 0.30]],
    "types": [{"name": "group",
               "labels": ["protected", "other"],
               "values": [0, 0, 0, 0, 1, 1, 1, 1]}]
  }
}' | grep -q '"id":"smoke"'
echo "== dataset created (replicates to both nodes)"

# smoke-designer-0 is owned by node-1 on the 2-ring and migrates to node-2
# when it joins; smoke-designer-6 stays on node-0 throughout (both are pure
# functions of the ids, so this is stable across runs).
for d in smoke-designer-0 smoke-designer-6; do
  curl -fs -X POST "${base0}/v1/designers?wait=true" -H 'Content-Type: application/json' -d '{
    "id": "'"$d"'",
    "spec": {
      "dataset": "smoke",
      "oracle": {"kind": "min_share", "attr": "group", "group": "protected",
                 "top_frac": 0.5, "share": 0.25},
      "config": {"mode": "2d"}
    }
  }' | grep -q '"status":"ready"'
done
echo "== designers built and ready"

query='{"weights": [0.5, 0.5]}'
answer0="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
answer1="$(curl -fs -X POST "${base1}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
echo "   suggest answer: ${answer0}"
echo "$answer0" | grep -q '"distance"'
[[ "$answer0" == "$answer1" ]] || { echo "answers differ across entry nodes" >&2; exit 1; }
echo "== suggest answered identically via both nodes"

# smoke-designer-6's answer is the reference for the legacy-store migration
# check after the final shutdown.
answer6="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-6/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
echo "$answer6" | grep -q '"distance"' || { echo "no answer for smoke-designer-6" >&2; exit 1; }

curl -fs "${base0}/cluster" | jq -e '.shards | length == 2' >/dev/null
echo "== cluster status reports 2 shards"

# Prometheus exposition: both nodes must render the gossip and handoff
# cluster series (counters exist from boot, whatever their value) plus the
# per-designer serving series on the designer's owner.
for b in "$base0" "$base1"; do
  metrics="$(curl -fs "${b}/metrics?format=prometheus")"
  echo "$metrics" | grep -q '^fairrank_gossip_rounds_total' \
    || { echo "no gossip series in ${b}/metrics?format=prometheus" >&2; exit 1; }
  echo "$metrics" | grep -q '^fairrank_handoff_pulls_total' \
    || { echo "no handoff series in ${b}/metrics?format=prometheus" >&2; exit 1; }
done
# Polled: right after startup the designer may still be serving from its
# creator while ownership settles on node-1, so give the owner a moment to
# record its first served queries before requiring the histogram.
hist_ok=0
for _ in $(seq 1 100); do
  curl -fs -X POST "${base1}/v1/designers/smoke-designer-0/suggest" \
    -H 'Content-Type: application/json' -d "$query" >/dev/null
  if curl -fs "${base1}/metrics?format=prometheus" \
    | grep -q '^fairrank_suggest_latency_seconds_bucket{designer="smoke-designer-0",le="+Inf"}'; then
    hist_ok=1; break
  fi
  sleep 0.1
done
[[ "$hist_ok" == "1" ]] \
  || { echo "owner exposes no latency histogram for smoke-designer-0" >&2; exit 1; }
echo "== Prometheus exposition serves gossip, handoff, and latency series"

# Request tracing: a client-set trace id must come back at /debug/traces.
curl -fs -X POST "${base0}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -H 'X-Fairrank-Trace: smoke-trace-1' \
  -d "$query" >/dev/null
curl -fs "${base0}/debug/traces?id=smoke-trace-1" | jq -e '.traces | length == 1' >/dev/null \
  || { echo "trace smoke-trace-1 not recorded on node-0" >&2; exit 1; }
echo "== request trace recorded under the caller's id"

# ── Patch stage ───────────────────────────────────────────────────────────
# Mutate a dedicated dataset under live suggest traffic. The PATCH (sent to
# node-1, not the creator) must return the chained revision, the serving
# index must be spliced by incremental repair — churn 2/8 is under the
# designer's 0.5 threshold, so a rebuild is a failure — every in-flight
# answer must stay well-formed, and both nodes must converge to identical
# answers over the patched data.
echo "== patch stage: dataset mutation under live traffic"
curl -fs -X POST "${base0}/v1/datasets" -H 'Content-Type: application/json' -d '{
  "id": "smoke-mut",
  "dataset": {
    "scoring": ["merit", "impact"],
    "rows": [[1.00, 0.91], [0.93, 1.02], [0.88, 0.97], [0.96, 0.84],
             [0.41, 0.33], [0.28, 0.44], [0.36, 0.21], [0.19, 0.30]],
    "types": [{"name": "group",
               "labels": ["protected", "other"],
               "values": [0, 0, 0, 0, 1, 1, 1, 1]}]
  }
}' >/dev/null
curl -fs -X POST "${base0}/v1/designers?wait=true" -H 'Content-Type: application/json' -d '{
  "id": "mut-designer",
  "spec": {
    "dataset": "smoke-mut",
    "oracle": {"kind": "min_share", "attr": "group", "group": "protected",
               "top_frac": 0.5, "share": 0.25},
    "config": {"mode": "2d", "repair_churn_frac": 0.5}
  }
}' | grep -q '"status":"ready"'

patch_traffic="${workdir}/patch-traffic.log"
( while :; do
    curl -fs -m 2 -X POST "${base0}/v1/designers/mut-designer/suggest" \
      -H 'Content-Type: application/json' -d "$query" >>"$patch_traffic" 2>/dev/null || true
    echo >>"$patch_traffic"
    sleep 0.02
  done ) &
patch_traffic_pid=$!

patch_body='{"remove": [0], "add": [{"row": [0.97, 0.88], "types": {"group": "protected"}}]}'
patch_res=""
for _ in $(seq 1 100); do
  if patch_res="$(curl -fs -X PATCH "${base1}/v1/datasets/smoke-mut" \
      -H 'Content-Type: application/json' -d "$patch_body")"; then break; fi
  sleep 0.1
done
echo "$patch_res" | jq -e '.revision != null and .n == 8' >/dev/null \
  || { echo "unexpected PATCH response: ${patch_res}" >&2; exit 1; }
echo "== patch stage: PATCH applied via node-1 (revision $(echo "$patch_res" | jq -r .revision))"

sleep 1  # keep traffic overlapping the splice
kill -9 "$patch_traffic_pid" 2>/dev/null || true
wait "$patch_traffic_pid" 2>/dev/null || true
if grep -v -e '^$' "$patch_traffic" | grep -v '"distance"' | grep -q .; then
  echo "traffic saw a malformed answer during the patch:" >&2
  grep -v -e '^$' "$patch_traffic" | grep -v '"distance"' | head -3 >&2
  exit 1
fi
grep -q '"distance"' "$patch_traffic" \
  || { echo "no suggest answer flowed during the patch" >&2; exit 1; }

patched_total="$(curl -fs "${base1}/metrics?format=prometheus" \
  | awk '/^fairrank_patch_total/ {print $2}')"
[[ -n "$patched_total" && "$patched_total" != "0" ]] \
  || { echo "fairrank_patch_total is ${patched_total:-missing} on node-1" >&2; exit 1; }
repair_line='patch: designer \\"mut-designer\\" index repaired in place'
repair_seen=0
for _ in $(seq 1 100); do
  if grep -q "$repair_line" "${workdir}/node0.log" "${workdir}/node1.log"; then repair_seen=1; break; fi
  sleep 0.1
done
[[ "$repair_seen" == "1" ]] \
  || { echo "no node repaired mut-designer in place" >&2
       cat "${workdir}/node0.log" "${workdir}/node1.log" >&2; exit 1; }
if grep -q 'patch: designer \\"mut-designer\\" rebuilt' "${workdir}/node0.log" "${workdir}/node1.log"; then
  echo "mut-designer was rebuilt instead of repaired" >&2
  exit 1
fi

pa=""; pb=""
for _ in $(seq 1 100); do
  pa="$(curl -fs -X POST "${base0}/v1/designers/mut-designer/suggest" \
    -H 'Content-Type: application/json' -d "$query" || true)"
  pb="$(curl -fs -X POST "${base1}/v1/designers/mut-designer/suggest" \
    -H 'Content-Type: application/json' -d "$query" || true)"
  [[ -n "$pa" && "$pa" == "$pb" ]] && break
  sleep 0.1
done
[[ -n "$pa" && "$pa" == "$pb" ]] \
  || { echo "post-patch answers diverge: ${pa} vs ${pb}" >&2; exit 1; }
echo "== patch stage passed: repaired in place under live traffic, answers converged"

echo "== joining node-2 at runtime (:${port2})"
"$bin" -addr "127.0.0.1:${port2}" -node-id node-2 -shards 2 \
  -join "$base0" -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data2" >"${workdir}/node2.log" 2>&1 &
pid2=$!
wait_healthy "$base2" "$pid2" node-2

# The migrated designer must arrive on node-2 by index handoff — loaded from
# the old owner's persisted stream, never rebuilt. The slog text format
# escapes the quotes inside the message (msg="... designer \"id\" ...").
handoff_line='handoff: designer \\"smoke-designer-0\\" index loaded'
for _ in $(seq 1 100); do
  if grep -q "$handoff_line" "${workdir}/node2.log"; then break; fi
  sleep 0.1
done
grep -q "$handoff_line" "${workdir}/node2.log" \
  || { echo "node-2 never received the index handoff" >&2; cat "${workdir}/node2.log" >&2; exit 1; }
if grep -q 'rebuild: designer \\"smoke-designer-0\\"' "${workdir}/node2.log"; then
  echo "node-2 rebuilt the migrated designer instead of loading the handoff" >&2
  exit 1
fi
echo "== handoff verified: no rebuild logged on the new owner"

answer2="$(curl -fs -X POST "${base2}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
[[ "$answer2" == "$answer0" ]] || { echo "post-join answer differs: ${answer2}" >&2; exit 1; }
curl -fs "${base0}/cluster" | jq -e '.members | length == 3' >/dev/null
echo "== 3-node ring serves byte-identical answers"

echo "== SIGTERM node-2 (drain-leave)"
kill -TERM "$pid2"
status=0; wait "$pid2" || status=$?
[[ $status -eq 0 ]] || { echo "node-2 exited with status ${status}" >&2; exit 1; }
grep -q 'left the ring' "${workdir}/node2.log" \
  || { echo "node-2 did not announce its leave" >&2; cat "${workdir}/node2.log" >&2; exit 1; }

# The survivors take the designer back (handoff push from the drain) and the
# answer is still the same bytes.
for _ in $(seq 1 100); do
  if curl -fs "${base0}/cluster" | jq -e '.members | length == 2' >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fs "${base0}/cluster" | jq -e '.members | length == 2' >/dev/null \
  || { echo "survivors still list node-2 after its leave" >&2; exit 1; }
for _ in $(seq 1 100); do
  post="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-0/suggest" \
    -H 'Content-Type: application/json' -d "$query" || true)"
  [[ "$post" == "$answer0" ]] && break
  sleep 0.1
done
[[ "$post" == "$answer0" ]] || { echo "post-leave answer differs: ${post}" >&2; exit 1; }
echo "== clean drain-leave: designer handed back, answers unchanged"

echo "== shutting the cluster down (SIGTERM)"
kill -TERM "$pid0" "$pid1"
status=0; wait "$pid0" || status=$?
[[ $status -eq 0 ]] || { echo "node-0 exited with status ${status}" >&2; exit 1; }
status=0; wait "$pid1" || status=$?
[[ $status -eq 0 ]] || { echo "node-1 exited with status ${status}" >&2; exit 1; }
[[ -f "${workdir}/data0/smoke.dataset.json" ]] || { echo "dataset not persisted" >&2; exit 1; }
ls "${workdir}"/data*/smoke-designer-0.index >/dev/null 2>&1 \
  || { echo "index not persisted anywhere" >&2; exit 1; }
echo "== clean shutdown, state persisted"

# Migration path: rewrite a persisted index with the legacy gob payload
# (idxtool), restart the node on it, and require the auto-migration — the
# store must load, be re-saved flat, and answer the same bytes as before.
echo "== building idxtool"
idx="${workdir}/idxtool"
go build -o "$idx" ./cmd/idxtool

"$idx" -data "${workdir}/data0" -id smoke-designer-6 | grep -q 'flat stream' \
  || { echo "persisted smoke-designer-6 index is not a flat stream" >&2; exit 1; }
echo "== persisted index confirmed flat (same format the handoff streamed)"

"$idx" -data "${workdir}/data0" -id smoke-designer-6 -to legacy
"$idx" -data "${workdir}/data0" -id smoke-designer-6 | grep -q 'legacy stream' \
  || { echo "idxtool did not produce a legacy stream" >&2; exit 1; }

echo "== restarting node-0 on the legacy store (migrate-on-load)"
"$bin" -addr "127.0.0.1:${port0}" -node-id node-0 -shards 2 \
  -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data0" >"${workdir}/node0-restart.log" 2>&1 &
pid0=$!
wait_healthy "$base0" "$pid0" node-0
grep -q 'migrated legacy index to flat format' "${workdir}/node0-restart.log" \
  || { echo "restart did not migrate the legacy index" >&2; cat "${workdir}/node0-restart.log" >&2; exit 1; }
"$idx" -data "${workdir}/data0" -id smoke-designer-6 | grep -q 'flat stream' \
  || { echo "index still legacy after the migrating restart" >&2; exit 1; }
answer6b="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-6/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
[[ "$answer6b" == "$answer6" ]] || { echo "post-migration answer differs: ${answer6b}" >&2; exit 1; }

kill -TERM "$pid0"
status=0; wait "$pid0" || status=$?
[[ $status -eq 0 ]] || { echo "restarted node-0 exited with status ${status}" >&2; exit 1; }
echo "== legacy store migrated on start, answers unchanged: smoke test passed"

# ── Replica stage ─────────────────────────────────────────────────────────
# A fresh 3-node cluster with -replicas 1: the owner of each designer pushes
# its sealed index to one follower, reads fan out across both, and kill -9 of
# the owner mid-traffic must fail over by PROMOTING the follower's copy (no
# rebuild), with byte-identical answers throughout. See docs/REPLICATION.md.
echo "== replica stage: starting a 3-node cluster with -replicas 1"
"$bin" -addr "127.0.0.1:${port3}" -node-id node-r0 -shards 2 -replicas 1 \
  -peers "node-r1=${base4},node-r2=${base5}" \
  -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data-r0" >"${workdir}/node-r0.log" 2>&1 &
pid3=$!
"$bin" -addr "127.0.0.1:${port4}" -node-id node-r1 -shards 2 -replicas 1 \
  -peers "node-r0=${base3},node-r2=${base5}" \
  -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data-r1" >"${workdir}/node-r1.log" 2>&1 &
pid4=$!
"$bin" -addr "127.0.0.1:${port5}" -node-id node-r2 -shards 2 -replicas 1 \
  -peers "node-r0=${base3},node-r1=${base4}" \
  -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data-r2" >"${workdir}/node-r2.log" 2>&1 &
pid5=$!
wait_healthy "$base3" "$pid3" node-r0
wait_healthy "$base4" "$pid4" node-r1
wait_healthy "$base5" "$pid5" node-r2

curl -fs -X POST "${base3}/v1/datasets" -H 'Content-Type: application/json' -d '{
  "id": "smoke",
  "dataset": {
    "scoring": ["merit", "impact"],
    "rows": [[1.00, 0.91], [0.93, 1.02], [0.88, 0.97], [0.96, 0.84],
             [0.41, 0.33], [0.28, 0.44], [0.36, 0.21], [0.19, 0.30]],
    "types": [{"name": "group",
               "labels": ["protected", "other"],
               "values": [0, 0, 0, 0, 1, 1, 1, 1]}]
  }
}' >/dev/null
rd="replica-designer-0"
curl -fs -X POST "${base3}/v1/designers?wait=true" -H 'Content-Type: application/json' -d '{
  "id": "'"$rd"'",
  "spec": {
    "dataset": "smoke",
    "oracle": {"kind": "min_share", "attr": "group", "group": "protected",
               "top_frac": 0.5, "share": 0.25},
    "config": {"mode": "2d"}
  }
}' | grep -q '"status":"ready"'
echo "== replica stage: designer built"

curl -fs "${base3}/cluster" | jq -e '.replicas == 1' >/dev/null \
  || { echo "cluster status does not report replicas=1" >&2; exit 1; }

# Resolve the designer's owner and follower from the cluster status, then
# map them onto pids/ports.
node_base() { case "$1" in node-r0) echo "$base3";; node-r1) echo "$base4";; node-r2) echo "$base5";; esac; }
node_pid()  { case "$1" in node-r0) echo "$pid3";;  node-r1) echo "$pid4";;  node-r2) echo "$pid5";;  esac; }
owner=""; follower=""
for _ in $(seq 1 100); do
  status="$(curl -fs "${base3}/cluster")"
  owner="$(echo "$status" | jq -r --arg d "$rd" \
    '.members[] | select(.designers != null and (.designers | index($d))) | .id')"
  follower="$(echo "$status" | jq -r --arg d "$rd" \
    '.members[] | select(.replica_for != null and (.replica_for | index($d))) | .id')"
  [[ -n "$owner" && -n "$follower" ]] && break
  sleep 0.1
done
[[ -n "$owner" && -n "$follower" ]] \
  || { echo "could not resolve owner/follower for ${rd}" >&2; exit 1; }
owner_base="$(node_base "$owner")"; owner_pid="$(node_pid "$owner")"
follower_base="$(node_base "$follower")"
echo "== replica stage: ${rd} owned by ${owner}, replicated on ${follower}"

# The owner must push the sealed index to its follower (replica metrics).
pushed=0
for _ in $(seq 1 100); do
  pushes="$(curl -fs "${owner_base}/metrics?format=prometheus" \
    | awk '/^fairrank_replica_pushes_total/ {print $2}')"
  if [[ -n "$pushes" && "$pushes" != "0" ]]; then pushed=1; break; fi
  sleep 0.1
done
[[ "$pushed" == "1" ]] || { echo "owner never pushed a replica copy" >&2; exit 1; }
echo "== replica stage: owner pushed the index to its follower"

baseline="$(curl -fs -X POST "${follower_base}/v1/designers/${rd}/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
echo "$baseline" | grep -q '"distance"' || { echo "no baseline answer" >&2; exit 1; }

# Keep read traffic flowing through the follower while the owner dies.
trafficlog="${workdir}/replica-traffic.log"
( while :; do
    curl -fs -m 2 -X POST "${follower_base}/v1/designers/${rd}/suggest" \
      -H 'Content-Type: application/json' -d "$query" >>"$trafficlog" 2>/dev/null || true
    echo >>"$trafficlog"
    sleep 0.05
  done ) &
traffic_pid=$!

echo "== replica stage: kill -9 the owner (${owner}) mid-traffic"
kill -9 "$owner_pid"

# Failover must PROMOTE the follower's pushed copy — never rebuild. The slog
# text format escapes the quotes in the message (msg="... \"id\" ...").
promote_line='promote: designer \\"'"$rd"'\\" activated'
follower_log="${workdir}/${follower}.log"
for _ in $(seq 1 150); do
  if grep -q "$promote_line" "$follower_log"; then break; fi
  sleep 0.1
done
grep -q "$promote_line" "$follower_log" \
  || { echo "follower never promoted its replica copy" >&2; cat "$follower_log" >&2; exit 1; }
if grep -q 'rebuild: designer \\"'"$rd"'\\"' "$follower_log"; then
  echo "follower rebuilt ${rd} instead of promoting its copy" >&2
  exit 1
fi
echo "== replica stage: promote-not-rebuild verified on ${follower}"

post="$(curl -fs -X POST "${follower_base}/v1/designers/${rd}/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
[[ "$post" == "$baseline" ]] \
  || { echo "post-failover answer differs: ${post} vs ${baseline}" >&2; exit 1; }

kill -9 "$traffic_pid" 2>/dev/null || true
wait "$traffic_pid" 2>/dev/null || true
# Every answer the traffic loop got — before, during, and after the kill —
# must be the same bytes (failed requests leave blank lines, never wrong ones).
if grep -v -F -x -e "$baseline" -e "" "$trafficlog" | grep -q .; then
  echo "traffic saw a divergent answer during failover:" >&2
  grep -v -F -x -e "$baseline" -e "" "$trafficlog" | head -3 >&2
  exit 1
fi
grep -c -F -x "$baseline" "$trafficlog" >/dev/null \
  || { echo "traffic loop never got an answer" >&2; exit 1; }

# Replica metrics on the promoted follower: a promotion was counted, and the
# read fan-out series exists with its path split.
fmetrics="$(curl -fs "${follower_base}/metrics?format=prometheus")"
promotions="$(echo "$fmetrics" | awk '/^fairrank_replica_promotions_total/ {print $2}')"
[[ -n "$promotions" && "$promotions" != "0" ]] \
  || { echo "fairrank_replica_promotions_total is ${promotions:-missing} on the follower" >&2; exit 1; }
echo "$fmetrics" | grep -q '^fairrank_replica_reads_total{path="local"}' \
  || { echo "no local replica-read series on the follower" >&2; exit 1; }
echo "$fmetrics" | grep -q '^fairrank_replica_factor 1' \
  || { echo "follower does not report replica factor 1" >&2; exit 1; }
echo "== replica stage: promotion and fan-out metrics verified"

kill -9 "$pid4" "$pid5" 2>/dev/null || true
[[ "$owner" != "node-r0" ]] && kill -9 "$pid3" 2>/dev/null || true
echo "== replica stage passed: owner kill survived with zero rebuilds"
