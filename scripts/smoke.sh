#!/usr/bin/env bash
# End-to-end smoke test for the fairrankd cluster: boot a 2-node cluster,
# drive the JSON API over real HTTP (dataset create → designer builds →
# suggest), then JOIN a third node at runtime and require index handoff (the
# migrated designer must be loaded from its old owner, never rebuilt), a
# byte-identical answer through the new owner, a clean SIGTERM drain-leave of
# the third node, and finally a clean SIGTERM shutdown of the rest with
# persisted state. CI runs this as its own job; it also works locally:
#
#   ./scripts/smoke.sh [base-port]
set -euo pipefail

port0="${1:-18080}"
port1=$((port0 + 1))
port2=$((port0 + 2))
base0="http://127.0.0.1:${port0}"
base1="http://127.0.0.1:${port1}"
base2="http://127.0.0.1:${port2}"
workdir="$(mktemp -d)"
bin="${workdir}/fairrankd"

cleanup() {
  for p in "${pid0:-}" "${pid1:-}" "${pid2:-}"; do
    if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
      kill -9 "$p" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_healthy() { # url pid name
  for _ in $(seq 1 150); do
    if curl -fs "$1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then
      echo "$3 exited before becoming healthy" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "$3 never became healthy" >&2
  exit 1
}

echo "== building fairrankd"
go build -o "$bin" ./cmd/fairrankd

echo "== starting a 2-node cluster (node-0 :${port0}, node-1 :${port1})"
"$bin" -addr "127.0.0.1:${port0}" -node-id node-0 -shards 2 \
  -peers "node-1=${base1}" -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data0" >"${workdir}/node0.log" 2>&1 &
pid0=$!
"$bin" -addr "127.0.0.1:${port1}" -node-id node-1 -shards 2 \
  -peers "node-0=${base0}" -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data1" >"${workdir}/node1.log" 2>&1 &
pid1=$!
wait_healthy "$base0" "$pid0" node-0
wait_healthy "$base1" "$pid1" node-1
echo "== both nodes healthy"

# A small 2-attribute dataset where the protected group scores high, so fair
# functions exist and suggest has an easy answer.
curl -fs -X POST "${base0}/v1/datasets" -H 'Content-Type: application/json' -d '{
  "id": "smoke",
  "dataset": {
    "scoring": ["merit", "impact"],
    "rows": [[1.00, 0.91], [0.93, 1.02], [0.88, 0.97], [0.96, 0.84],
             [0.41, 0.33], [0.28, 0.44], [0.36, 0.21], [0.19, 0.30]],
    "types": [{"name": "group",
               "labels": ["protected", "other"],
               "values": [0, 0, 0, 0, 1, 1, 1, 1]}]
  }
}' | grep -q '"id":"smoke"'
echo "== dataset created (replicates to both nodes)"

# smoke-designer-0 is owned by node-1 on the 2-ring and migrates to node-2
# when it joins; smoke-designer-6 stays on node-0 throughout (both are pure
# functions of the ids, so this is stable across runs).
for d in smoke-designer-0 smoke-designer-6; do
  curl -fs -X POST "${base0}/v1/designers?wait=true" -H 'Content-Type: application/json' -d '{
    "id": "'"$d"'",
    "spec": {
      "dataset": "smoke",
      "oracle": {"kind": "min_share", "attr": "group", "group": "protected",
                 "top_frac": 0.5, "share": 0.25},
      "config": {"mode": "2d"}
    }
  }' | grep -q '"status":"ready"'
done
echo "== designers built and ready"

query='{"weights": [0.5, 0.5]}'
answer0="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
answer1="$(curl -fs -X POST "${base1}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
echo "   suggest answer: ${answer0}"
echo "$answer0" | grep -q '"distance"'
[[ "$answer0" == "$answer1" ]] || { echo "answers differ across entry nodes" >&2; exit 1; }
echo "== suggest answered identically via both nodes"

# smoke-designer-6's answer is the reference for the legacy-store migration
# check after the final shutdown.
answer6="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-6/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
echo "$answer6" | grep -q '"distance"' || { echo "no answer for smoke-designer-6" >&2; exit 1; }

curl -fs "${base0}/cluster" | jq -e '.shards | length == 2' >/dev/null
echo "== cluster status reports 2 shards"

# Prometheus exposition: both nodes must render the gossip and handoff
# cluster series (counters exist from boot, whatever their value) plus the
# per-designer serving series on the designer's owner.
for b in "$base0" "$base1"; do
  metrics="$(curl -fs "${b}/metrics?format=prometheus")"
  echo "$metrics" | grep -q '^fairrank_gossip_rounds_total' \
    || { echo "no gossip series in ${b}/metrics?format=prometheus" >&2; exit 1; }
  echo "$metrics" | grep -q '^fairrank_handoff_pulls_total' \
    || { echo "no handoff series in ${b}/metrics?format=prometheus" >&2; exit 1; }
done
curl -fs "${base1}/metrics?format=prometheus" \
  | grep -q '^fairrank_suggest_latency_seconds_bucket{designer="smoke-designer-0",le="+Inf"}' \
  || { echo "owner exposes no latency histogram for smoke-designer-0" >&2; exit 1; }
echo "== Prometheus exposition serves gossip, handoff, and latency series"

# Request tracing: a client-set trace id must come back at /debug/traces.
curl -fs -X POST "${base0}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -H 'X-Fairrank-Trace: smoke-trace-1' \
  -d "$query" >/dev/null
curl -fs "${base0}/debug/traces?id=smoke-trace-1" | jq -e '.traces | length == 1' >/dev/null \
  || { echo "trace smoke-trace-1 not recorded on node-0" >&2; exit 1; }
echo "== request trace recorded under the caller's id"

echo "== joining node-2 at runtime (:${port2})"
"$bin" -addr "127.0.0.1:${port2}" -node-id node-2 -shards 2 \
  -join "$base0" -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data2" >"${workdir}/node2.log" 2>&1 &
pid2=$!
wait_healthy "$base2" "$pid2" node-2

# The migrated designer must arrive on node-2 by index handoff — loaded from
# the old owner's persisted stream, never rebuilt. The slog text format
# escapes the quotes inside the message (msg="... designer \"id\" ...").
handoff_line='handoff: designer \\"smoke-designer-0\\" index loaded'
for _ in $(seq 1 100); do
  if grep -q "$handoff_line" "${workdir}/node2.log"; then break; fi
  sleep 0.1
done
grep -q "$handoff_line" "${workdir}/node2.log" \
  || { echo "node-2 never received the index handoff" >&2; cat "${workdir}/node2.log" >&2; exit 1; }
if grep -q 'rebuild: designer \\"smoke-designer-0\\"' "${workdir}/node2.log"; then
  echo "node-2 rebuilt the migrated designer instead of loading the handoff" >&2
  exit 1
fi
echo "== handoff verified: no rebuild logged on the new owner"

answer2="$(curl -fs -X POST "${base2}/v1/designers/smoke-designer-0/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
[[ "$answer2" == "$answer0" ]] || { echo "post-join answer differs: ${answer2}" >&2; exit 1; }
curl -fs "${base0}/cluster" | jq -e '.members | length == 3' >/dev/null
echo "== 3-node ring serves byte-identical answers"

echo "== SIGTERM node-2 (drain-leave)"
kill -TERM "$pid2"
status=0; wait "$pid2" || status=$?
[[ $status -eq 0 ]] || { echo "node-2 exited with status ${status}" >&2; exit 1; }
grep -q 'left the ring' "${workdir}/node2.log" \
  || { echo "node-2 did not announce its leave" >&2; cat "${workdir}/node2.log" >&2; exit 1; }

# The survivors take the designer back (handoff push from the drain) and the
# answer is still the same bytes.
for _ in $(seq 1 100); do
  if curl -fs "${base0}/cluster" | jq -e '.members | length == 2' >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fs "${base0}/cluster" | jq -e '.members | length == 2' >/dev/null \
  || { echo "survivors still list node-2 after its leave" >&2; exit 1; }
for _ in $(seq 1 100); do
  post="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-0/suggest" \
    -H 'Content-Type: application/json' -d "$query" || true)"
  [[ "$post" == "$answer0" ]] && break
  sleep 0.1
done
[[ "$post" == "$answer0" ]] || { echo "post-leave answer differs: ${post}" >&2; exit 1; }
echo "== clean drain-leave: designer handed back, answers unchanged"

echo "== shutting the cluster down (SIGTERM)"
kill -TERM "$pid0" "$pid1"
status=0; wait "$pid0" || status=$?
[[ $status -eq 0 ]] || { echo "node-0 exited with status ${status}" >&2; exit 1; }
status=0; wait "$pid1" || status=$?
[[ $status -eq 0 ]] || { echo "node-1 exited with status ${status}" >&2; exit 1; }
[[ -f "${workdir}/data0/smoke.dataset.json" ]] || { echo "dataset not persisted" >&2; exit 1; }
ls "${workdir}"/data*/smoke-designer-0.index >/dev/null 2>&1 \
  || { echo "index not persisted anywhere" >&2; exit 1; }
echo "== clean shutdown, state persisted"

# Migration path: rewrite a persisted index with the legacy gob payload
# (idxtool), restart the node on it, and require the auto-migration — the
# store must load, be re-saved flat, and answer the same bytes as before.
echo "== building idxtool"
idx="${workdir}/idxtool"
go build -o "$idx" ./cmd/idxtool

"$idx" -data "${workdir}/data0" -id smoke-designer-6 | grep -q 'flat stream' \
  || { echo "persisted smoke-designer-6 index is not a flat stream" >&2; exit 1; }
echo "== persisted index confirmed flat (same format the handoff streamed)"

"$idx" -data "${workdir}/data0" -id smoke-designer-6 -to legacy
"$idx" -data "${workdir}/data0" -id smoke-designer-6 | grep -q 'legacy stream' \
  || { echo "idxtool did not produce a legacy stream" >&2; exit 1; }

echo "== restarting node-0 on the legacy store (migrate-on-load)"
"$bin" -addr "127.0.0.1:${port0}" -node-id node-0 -shards 2 \
  -anti-entropy 300ms -health-interval 300ms \
  -data "${workdir}/data0" >"${workdir}/node0-restart.log" 2>&1 &
pid0=$!
wait_healthy "$base0" "$pid0" node-0
grep -q 'migrated legacy index to flat format' "${workdir}/node0-restart.log" \
  || { echo "restart did not migrate the legacy index" >&2; cat "${workdir}/node0-restart.log" >&2; exit 1; }
"$idx" -data "${workdir}/data0" -id smoke-designer-6 | grep -q 'flat stream' \
  || { echo "index still legacy after the migrating restart" >&2; exit 1; }
answer6b="$(curl -fs -X POST "${base0}/v1/designers/smoke-designer-6/suggest" \
  -H 'Content-Type: application/json' -d "$query")"
[[ "$answer6b" == "$answer6" ]] || { echo "post-migration answer differs: ${answer6b}" >&2; exit 1; }

kill -TERM "$pid0"
status=0; wait "$pid0" || status=$?
[[ $status -eq 0 ]] || { echo "restarted node-0 exited with status ${status}" >&2; exit 1; }
echo "== legacy store migrated on start, answers unchanged: smoke test passed"
