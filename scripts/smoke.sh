#!/usr/bin/env bash
# End-to-end smoke test: boot a 2-shard fairrankd on a temp data dir, drive
# the JSON API over real HTTP (dataset create → designer build → suggest →
# cluster status), then shut it down cleanly with SIGTERM and require exit
# code 0. CI runs this as its own job; it also works locally:
#
#   ./scripts/smoke.sh [port]
set -euo pipefail

port="${1:-18080}"
base="http://127.0.0.1:${port}"
workdir="$(mktemp -d)"
bin="${workdir}/fairrankd"
data="${workdir}/data"

cleanup() {
  if [[ -n "${pid:-}" ]] && kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building fairrankd"
go build -o "$bin" ./cmd/fairrankd

echo "== starting fairrankd with 2 in-process shards on :${port}"
"$bin" -addr "127.0.0.1:${port}" -shards 2 -data "$data" &
pid=$!

for _ in $(seq 1 100); do
  if curl -fs "${base}/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "fairrankd exited before becoming healthy" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fs "${base}/healthz" | grep -q '"ok"'
echo "== healthz ok"

# A small 2-attribute dataset where the protected group scores high, so fair
# functions exist and suggest has an easy answer.
curl -fs -X POST "${base}/v1/datasets" -H 'Content-Type: application/json' -d '{
  "id": "smoke",
  "dataset": {
    "scoring": ["merit", "impact"],
    "rows": [[1.00, 0.91], [0.93, 1.02], [0.88, 0.97], [0.96, 0.84],
             [0.41, 0.33], [0.28, 0.44], [0.36, 0.21], [0.19, 0.30]],
    "types": [{"name": "group",
               "labels": ["protected", "other"],
               "values": [0, 0, 0, 0, 1, 1, 1, 1]}]
  }
}' | grep -q '"id":"smoke"'
echo "== dataset created"

curl -fs -X POST "${base}/v1/designers?wait=true" -H 'Content-Type: application/json' -d '{
  "id": "smoke-designer",
  "spec": {
    "dataset": "smoke",
    "oracle": {"kind": "min_share", "attr": "group", "group": "protected",
               "top_frac": 0.5, "share": 0.25},
    "config": {"mode": "2d"}
  }
}' | grep -q '"status":"ready"'
echo "== designer built and ready"

answer="$(curl -fs -X POST "${base}/v1/designers/smoke-designer/suggest" \
  -H 'Content-Type: application/json' -d '{"weights": [0.5, 0.5]}')"
echo "   suggest answer: ${answer}"
echo "$answer" | grep -q '"distance"'
echo "== suggest answered"

cluster="$(curl -fs "${base}/cluster")"
echo "$cluster" | grep -q '"node_id":"node-0"'
[[ "$(echo "$cluster" | jq '.shards | length')" == "2" ]]
echo "== cluster status reports 2 shards"

echo "== shutting down (SIGTERM)"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [[ $status -ne 0 ]]; then
  echo "fairrankd exited with status ${status}" >&2
  exit 1
fi
[[ -f "${data}/smoke.dataset.json" ]] || { echo "dataset not persisted" >&2; exit 1; }
[[ -f "${data}/smoke-designer.index" ]] || { echo "index not persisted" >&2; exit 1; }
echo "== clean shutdown, state persisted: smoke test passed"
