package fairrank

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"fairrank/internal/datagen"
)

// concurrencyFixture builds a designer and a deterministic query workload.
func concurrencyFixture(t *testing.T, mode Mode) (*Designer, [][]float64) {
	t.Helper()
	_, _, d, _ := roundtripFixture(t, mode)
	r := rand.New(rand.NewSource(21))
	queries := make([][]float64, 64)
	for i := range queries {
		w := make([]float64, d.ds.D())
		for k := range w {
			w[k] = r.Float64() + 0.01
		}
		queries[i] = w
	}
	return d, queries
}

// Suggest must be safe for concurrent use on every engine and return the
// same answer a serial caller gets — exercised under -race in CI.
func TestConcurrentSuggestAllModes(t *testing.T) {
	for _, mode := range []Mode{Mode2D, ModeExact, ModeApprox} {
		t.Run(mode.String(), func(t *testing.T) {
			d, queries := concurrencyFixture(t, mode)
			// Serial reference answers.
			type ref struct {
				dist float64
				err  bool
			}
			want := make([]ref, len(queries))
			for i, w := range queries {
				s, err := d.Suggest(w)
				if err != nil {
					if !errors.Is(err, ErrUnsatisfiable) {
						t.Fatal(err)
					}
					want[i] = ref{err: true}
					continue
				}
				want[i] = ref{dist: s.Distance}
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 5; rep++ {
						for i, w := range queries {
							s, err := d.Suggest(w)
							if (err != nil) != want[i].err {
								t.Errorf("goroutine %d query %d: error mismatch %v", g, i, err)
								return
							}
							if err == nil && s.Distance != want[i].dist {
								t.Errorf("goroutine %d query %d: distance %v, serial %v", g, i, s.Distance, want[i].dist)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// SuggestBatch must return, slot for slot, exactly what Suggest returns.
func TestSuggestBatchMatchesSuggest(t *testing.T) {
	for _, mode := range []Mode{Mode2D, ModeExact, ModeApprox} {
		t.Run(mode.String(), func(t *testing.T) {
			d, queries := concurrencyFixture(t, mode)
			results := d.SuggestBatch(queries)
			if len(results) != len(queries) {
				t.Fatalf("got %d results for %d queries", len(results), len(queries))
			}
			for i, w := range queries {
				s, err := d.Suggest(w)
				res := results[i]
				if (err != nil) != (res.Err != nil) {
					t.Fatalf("slot %d: error mismatch %v vs %v", i, err, res.Err)
				}
				if err != nil {
					continue
				}
				if s.Distance != res.Suggestion.Distance || s.AlreadyFair != res.Suggestion.AlreadyFair {
					t.Fatalf("slot %d: %+v vs %+v", i, s, res.Suggestion)
				}
				for k := range s.Weights {
					if s.Weights[k] != res.Suggestion.Weights[k] {
						t.Fatalf("slot %d: weights %v vs %v", i, s.Weights, res.Suggestion.Weights)
					}
				}
			}
		})
	}
}

func TestSuggestBatchEmptyAndErrors(t *testing.T) {
	d, _ := concurrencyFixture(t, Mode2D)
	if res := d.SuggestBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	res := d.SuggestBatch([][]float64{{0.5, 0.5}, {1, 2, 3}, nil})
	if res[0].Err != nil {
		t.Errorf("valid query errored: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Error("3-weight query against a 2D designer should error")
	}
	if res[2].Err == nil {
		t.Error("nil query should error")
	}
}

// ModeExact answers must be deterministic call over call (the per-call query
// seed), or concurrent serving would return different answers for identical
// requests depending on timing.
func TestExactSuggestDeterministicAcrossCalls(t *testing.T) {
	ds, err := datagen.Uniform(20, 3, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDesigner(ds, oracle, Config{Mode: ModeExact, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Satisfiable() {
		t.Skip("unsatisfiable instance")
	}
	w := []float64{0.2, 0.3, 0.5}
	first, err := d.Suggest(w)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := d.Suggest(w)
		if err != nil {
			t.Fatal(err)
		}
		if first.Distance != again.Distance {
			t.Fatalf("call %d: distance %v, first call %v", rep, again.Distance, first.Distance)
		}
		for k := range first.Weights {
			if first.Weights[k] != again.Weights[k] {
				t.Fatalf("call %d: weights %v, first call %v", rep, again.Weights, first.Weights)
			}
		}
	}
}
