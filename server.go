package fairrank

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairrank/internal/cluster"
	"fairrank/internal/obs"
	"fairrank/internal/service"
)

// Server is the query-serving subsystem as a public API: a sharded registry
// of named designers over named datasets, background index builds with
// status reporting, single and batch suggest paths, drift-triggered
// rebuild-and-swap, per-designer metrics, and index persistence to a data
// directory. cmd/fairrankd wraps it in an http.Server; embedders can mount
// Handler() wherever they like or drive the typed methods directly.
//
// Designers are partitioned by a rendezvous-hash ring (internal/cluster):
// across the in-process shard registries always, and — when ClusterConfig
// names peers — across a fleet of fairrankd nodes, with the HTTP layer
// forwarding any request to the designer's owner. Answers are byte-identical
// regardless of shard count or which node received the request.
//
// All methods are safe for concurrent use; the suggest path reads the
// serving index through one atomic load, so queries never wait on builds.
type Server struct {
	router *cluster.Router
	meta   *cluster.MetaStore

	mu       sync.RWMutex
	datasets map[string]*Dataset
	specs    map[string]DesignerSpec
	pulling  map[string]bool // designer ids with an index handoff/build in flight

	// Dataset mutability (server_patch.go). datasetRevs chains each dataset's
	// revision fingerprint through every applied patch, seeded with the
	// dataset's content fingerprint (under mu); patchMu serializes
	// PatchDataset so concurrent patches chain on one lineage instead of
	// forking it; repairBusy coalesces reconcile's detect-and-patch sweeps.
	datasetRevs map[string]uint64
	patchMu     sync.Mutex
	repairBusy  atomic.Bool

	// Patch metrics (prom.go): datasets patched on this node, designer
	// indexes spliced incrementally vs rebuilt, and the repair latency
	// histogram.
	patchTotal    atomic.Int64
	patchRepairs  atomic.Int64
	patchRebuilds atomic.Int64
	patchDur      patchHist

	// Read replication (docs/REPLICATION.md). replicas holds the sealed index
	// copies this node keeps as a follower; replicaK is the effective
	// replication factor (the -replicas flag, superseded by the gossiped
	// replicas/config entry); cfgReplicas remembers the flag itself so a
	// restart re-originates it above any restored version. replicaRR spreads
	// outside-set reads across the replica set; pushed (under mu) tracks the
	// last generation successfully pushed per (designer, follower) so the
	// owner's sync loop is idempotent; replicaBusy coalesces sync passes.
	replicas    *service.ReplicaStore
	replicaK    atomic.Int64
	cfgReplicas int
	replicaRR   atomic.Uint64
	pushed      map[string]map[string]uint64
	replicaBusy atomic.Bool

	// memberMu serializes membership read-modify-originate (join, leave,
	// force-remove): two concurrent joins through the same node must not
	// both read the old member list and silently drop each other.
	memberMu sync.Mutex
	// applyMu serializes applyEntries batches so Apply-then-materialize is
	// atomic per entry (see applyEntries).
	applyMu   sync.Mutex
	advertise string
	log       *slog.Logger
	logf      func(format string, args ...any)

	// draining flips when this node begins a POST /cluster/leave drain;
	// /healthz then answers 503 {"status":"draining"} so load balancers and
	// peer health probes stop sending new work while indexes hand off.
	draining atomic.Bool

	tracer  *obs.Tracer
	mux     *http.ServeMux
	handler http.Handler
	start   time.Time

	stopOnce sync.Once
	stopc    chan struct{}
}

// ClusterPeer identifies one remote fairrankd node of a cluster.
type ClusterPeer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ClusterConfig configures the shard layer of a Server. The zero value is a
// single node with one in-process shard — exactly the pre-cluster server.
type ClusterConfig struct {
	// NodeID names this node on the ring (default "node-0"). Every node of
	// one cluster must use a distinct id, and all nodes must agree on the
	// full membership (their own id plus Peers), or they will compute
	// different owners.
	NodeID string
	// Shards is the number of in-process shard registries (default 1).
	Shards int
	// Peers are the other nodes of the cluster.
	Peers []ClusterPeer
	// AdvertiseURL is this node's own HTTP base URL as other members must
	// reach it ("http://host:port"). It names this node in gossiped
	// membership, so it is required on any node that hosts runtime joins
	// or joins a cluster itself; purely static fleets may leave it empty.
	AdvertiseURL string
	// HealthInterval is the period of the background peer health probe;
	// 0 disables the loop (peers are then marked unhealthy only by failed
	// forwards, and never recover).
	HealthInterval time.Duration
	// Replicas is the number of read replicas (followers) kept per designer
	// in addition to its owner — the -replicas flag. 0 disables replication
	// (owner-only serving, the pre-replica behavior). The value is gossiped
	// as the replicas/config metadata entry, so nodes booted without the flag
	// adopt the cluster's value; a node booted WITH the flag re-originates it
	// above every version it has persisted, making the flag authoritative on
	// restart. See docs/REPLICATION.md.
	Replicas int
	// AntiEntropyInterval is the period of the background anti-entropy
	// pass: each tick the node exchanges a versioned metadata digest with
	// one random healthy peer and pulls or pushes whatever differs, so a
	// create or delete issued while a peer was down converges once it
	// returns. 0 disables the pass (metadata then replicates only through
	// the best-effort create fan-out).
	AntiEntropyInterval time.Duration
	// Logf receives cluster lifecycle events (membership changes, index
	// handoffs, fallback rebuilds) as preformatted lines. nil discards them
	// unless Logger is set. Retained for embedders that capture log lines;
	// new code should set Logger.
	Logf func(format string, args ...any)
	// Logger is the node's structured logger (lifecycle events, slow-query
	// records). It takes precedence over Logf; when both are nil, logging is
	// discarded. cmd/fairrankd wires obs.NewLogger so every line carries the
	// node id.
	Logger *slog.Logger
	// TraceBuffer is the capacity of the in-memory ring of recent request
	// traces served at GET /debug/traces (default 256).
	TraceBuffer int
	// SlowQueryThreshold enables the slow-query log for requests at least
	// this slow; 0 disables it.
	SlowQueryThreshold time.Duration
	// SlowQueryEvery samples the slow-query log: log the 1st, (1+N)th,
	// (1+2N)th... slow request. Values <= 1 log every slow request.
	SlowQueryEvery int
}

// NewServer returns an empty single-node server. Call LoadDir to restore
// persisted state.
func NewServer() *Server {
	s, err := NewClusterServer(ClusterConfig{})
	if err != nil {
		// Unreachable: the zero config is always valid.
		panic(err)
	}
	return s
}

// NewClusterServer returns an empty server participating in the configured
// cluster. Call Close to stop its background health loop.
func NewClusterServer(cfg ClusterConfig) (*Server, error) {
	peers := make([]cluster.Member, len(cfg.Peers))
	for i, p := range cfg.Peers {
		peers[i] = cluster.Member{ID: p.ID, URL: p.URL}
	}
	router, err := cluster.NewRouter(cluster.Config{
		NodeID:       cfg.NodeID,
		AdvertiseURL: strings.TrimSuffix(cfg.AdvertiseURL, "/"),
		Shards:       cfg.Shards,
		Peers:        peers,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		router:      router,
		meta:        cluster.NewMetaStore(),
		datasets:    make(map[string]*Dataset),
		datasetRevs: make(map[string]uint64),
		specs:       make(map[string]DesignerSpec),
		pulling:     make(map[string]bool),
		replicas:    service.NewReplicaStore(),
		cfgReplicas: cfg.Replicas,
		pushed:      make(map[string]map[string]uint64),
		advertise:   strings.TrimSuffix(cfg.AdvertiseURL, "/"),
		logf:        cfg.Logf,
		start:       time.Now(),
		stopc:       make(chan struct{}),
	}
	if cfg.Replicas > 0 {
		s.originateReplicaConfig(cfg.Replicas)
	}
	// Logging: one slog.Logger backs both the structured calls (s.log) and
	// the legacy printf-style sites (s.logf). A caller-provided Logger wins;
	// a Logf-only config keeps receiving the same preformatted lines through
	// a bridge handler; neither configured discards.
	switch {
	case cfg.Logger != nil:
		s.log = cfg.Logger
	case cfg.Logf != nil:
		s.log = slog.New(&logfHandler{f: cfg.Logf})
	default:
		s.log = slog.New(slog.DiscardHandler)
	}
	s.logf = func(format string, args ...any) { s.log.Info(fmt.Sprintf(format, args...)) }
	s.tracer = obs.NewTracer(obs.Config{
		Node:          router.NodeID(),
		Buffer:        cfg.TraceBuffer,
		SlowThreshold: cfg.SlowQueryThreshold,
		SlowEvery:     cfg.SlowQueryEvery,
		Logger:        s.log,
	})
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = s.tracer.Middleware(s.mux)
	router.StartHealth(cfg.HealthInterval)
	s.startAntiEntropy(cfg.AntiEntropyInterval)
	return s, nil
}

// logfHandler adapts a printf-style sink to slog for ClusterConfig.Logf
// compatibility: the message followed by " key=value" attribute pairs, one
// line per record.
type logfHandler struct {
	f     func(format string, args ...any)
	attrs []slog.Attr
}

// Enabled reports that every level is logged — the Logf contract had no
// levels.
func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle formats the record onto the printf sink.
func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.f("%s", b.String())
	return nil
}

// WithAttrs returns a handler that prepends attrs to every record.
func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{f: h.f, attrs: append(append([]slog.Attr(nil), h.attrs...), attrs...)}
}

// WithGroup flattens groups — the printf sink has no nesting.
func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// Close stops the server's background peer health and anti-entropy loops.
// Serving state is untouched; in-flight builds finish on their own
// goroutines.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.router.Close()
}

// shard returns the in-process shard registry that holds id.
func (s *Server) shard(id string) *service.Registry {
	_, reg := s.router.ShardFor(id)
	return reg
}

// ErrUnknownID is returned (wrapped, naming the id) when a dataset or
// designer lookup fails; the HTTP layer maps it to 404.
var ErrUnknownID = errors.New("fairrank: unknown id")

// ErrDuplicateID is returned (wrapped, naming the id) when registering a
// dataset under a taken id; the HTTP layer maps it — like the registry's
// service.ErrDuplicateName for designers — to 409.
var ErrDuplicateID = errors.New("fairrank: id already registered")

// designerEngine adapts a Designer to the service.Engine interface.
type designerEngine struct{ d *Designer }

func (e *designerEngine) Suggest(w []float64) (*service.Suggestion, error) {
	s, err := e.d.Suggest(w)
	if err != nil {
		return nil, err
	}
	return &service.Suggestion{Weights: s.Weights, Distance: s.Distance, AlreadyFair: s.AlreadyFair}, nil
}

func (e *designerEngine) SuggestBatch(ws [][]float64) []service.Result {
	return toServiceResults(e.d.SuggestBatch(ws))
}

// SuggestBatchCtx implements the optional service.ContextBatcher capability:
// the designer records its planner and kernel stages on the request's trace.
func (e *designerEngine) SuggestBatchCtx(ctx context.Context, ws [][]float64) []service.Result {
	return toServiceResults(e.d.SuggestBatchCtx(ctx, ws))
}

func toServiceResults(batch []BatchResult) []service.Result {
	out := make([]service.Result, len(batch))
	for i, r := range batch {
		if r.Err != nil {
			out[i].Err = r.Err
			continue
		}
		out[i].Suggestion = &service.Suggestion{
			Weights:     r.Suggestion.Weights,
			Distance:    r.Suggestion.Distance,
			AlreadyFair: r.Suggestion.AlreadyFair,
		}
	}
	return out
}

func (e *designerEngine) ModeName() string { return e.d.Mode().String() }

// BatchPlanStats implements the optional service.BatchPlanner capability, so
// the planner's decisions surface on /metrics per designer.
func (e *designerEngine) BatchPlanStats() service.BatchPlanStats {
	st := e.d.BatchPlanStats()
	return service.BatchPlanStats{
		Slots:         st.Slots,
		DedupedSlots:  st.DedupedSlots,
		ResumeHits:    st.ResumeHits,
		LastChunkSize: st.LastChunkSize,
	}
}

func (e *designerEngine) SaveIndex(w io.Writer) error { return e.d.SaveIndex(w) }

// validateID accepts the ids used for datasets and designers. Ids become
// file names in the data directory, so path separators and dot-prefixes are
// rejected outright.
func validateID(id string) error {
	if id == "" {
		return errors.New("fairrank: empty id")
	}
	if len(id) > 128 {
		return fmt.Errorf("fairrank: id longer than 128 bytes")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("fairrank: id %q contains %q; allowed: letters, digits, '-', '_', '.'", id, c)
		}
	}
	if id[0] == '.' {
		return fmt.Errorf("fairrank: id %q must not start with a dot", id)
	}
	return nil
}

// Replicated metadata keys: one namespace per entry kind, ordered so that a
// sorted batch applies datasets before the designer specs that reference
// them (and the ring last; see applyEntries).
func metaKeyDataset(id string) string  { return "dataset/" + id }
func metaKeyDesigner(id string) string { return "designer/" + id }

// AddDataset registers a dataset under an id and records it in the
// replicated metadata store, versioned for anti-entropy repair.
func (s *Server) AddDataset(id string, ds *Dataset) error {
	if err := validateID(id); err != nil {
		return err
	}
	if ds == nil {
		return errors.New("fairrank: nil dataset")
	}
	s.mu.Lock()
	if _, dup := s.datasets[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: dataset %q", ErrDuplicateID, id)
	}
	s.datasets[id] = ds
	s.datasetRevs[id] = ds.Fingerprint()
	s.mu.Unlock()
	spec := SpecOfDataset(ds)
	spec.Revision = ds.Fingerprint()
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	s.meta.Put(metaKeyDataset(id), payload)
	return nil
}

// Dataset returns a registered dataset.
func (s *Server) Dataset(id string) (*Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[id]
	return ds, ok
}

// DatasetRevision returns a dataset's revision fingerprint: its content
// fingerprint at registration, chained through every applied patch
// (ChainRevision). Two nodes report the same revision exactly when they saw
// the same patch lineage.
func (s *Server) DatasetRevision(id string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rev, ok := s.datasetRevs[id]
	if !ok {
		if ds, has := s.datasets[id]; has {
			return ds.Fingerprint(), true
		}
	}
	return rev, ok
}

// CreateDesigner registers a designer and — when this node owns it on the
// cluster ring — starts its offline build in the background; watch it
// through DesignerStatus or WaitReady. An engine loaded from a persisted
// index (LoadDir) skips the build. On a non-owner node the spec is stored
// dormant: the node can answer by forwarding (HTTP layer) and can build the
// index itself if ownership ever fails over to it.
func (s *Server) CreateDesigner(id string, spec DesignerSpec) error {
	if err := validateID(id); err != nil {
		return err
	}
	build, err := s.builder(spec)
	if err != nil {
		return err
	}
	if !s.router.OwnedLocally(id) {
		s.mu.Lock()
		if _, dup := s.specs[id]; dup {
			s.mu.Unlock()
			return fmt.Errorf("%w: designer %q", ErrDuplicateID, id)
		}
		s.specs[id] = spec
		s.mu.Unlock()
		return s.putDesignerMeta(id, spec)
	}
	// The shard registry is the authority on name collisions; an existing
	// designer's spec must survive a failed duplicate create untouched.
	s.mu.Lock()
	old, had := s.specs[id]
	s.specs[id] = spec
	s.mu.Unlock()
	if _, err := s.shard(id).Create(id, build); err != nil {
		s.mu.Lock()
		if had {
			s.specs[id] = old
		} else {
			delete(s.specs, id)
		}
		s.mu.Unlock()
		return err
	}
	return s.putDesignerMeta(id, spec)
}

// putDesignerMeta records a designer spec in the replicated metadata store —
// but only while that spec is still the current one. A delete (or a
// competing create) that interleaved between the spec store and this call
// must win: blindly Putting here would mint a live version above the
// tombstone and resurrect the designer in metadata while the local spec and
// index stay gone. The losing create evicts whatever entry it landed and
// reports the designer unknown.
func (s *Server) putDesignerMeta(id string, spec DesignerSpec) error {
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	cur, ok := s.specs[id]
	current := ok && reflect.DeepEqual(cur, spec)
	if current {
		s.meta.Put(metaKeyDesigner(id), payload)
	}
	s.mu.Unlock()
	if !current {
		s.shard(id).Remove(id)
		return fmt.Errorf("%w: designer %q (superseded mid-create)", ErrUnknownID, id)
	}
	return nil
}

// DeleteDesigner removes a designer: its spec, its local index (if any), and
// — through the replicated tombstone — every copy on the rest of the
// cluster. The tombstone's version supersedes the live entry, so a peer that
// was down during the delete discards its copy on its next anti-entropy
// exchange instead of resurrecting the designer.
func (s *Server) DeleteDesigner(id string) error {
	s.mu.Lock()
	_, known := s.specs[id]
	s.mu.Unlock()
	if !known {
		if _, held := s.shard(id).Get(id); !held {
			return fmt.Errorf("%w: designer %q", ErrUnknownID, id)
		}
	}
	// Tombstone FIRST, then evict: an activation racing this delete
	// re-checks the tombstone after it lands its entry (localEntry,
	// ensureOwned), so this order guarantees either the Remove below or the
	// racer's own re-check evicts the index — never a spec-less zombie.
	s.meta.Delete(metaKeyDesigner(id))
	// The publication entry follows the designer into deletion (guarded on
	// existence so never-replicated designers don't mint spurious tombstones);
	// followers drop their copies when either tombstone materializes.
	if _, ok := s.meta.Get(cluster.ReplicaMetaKey(id)); ok {
		s.meta.Delete(cluster.ReplicaMetaKey(id))
	}
	s.mu.Lock()
	delete(s.specs, id)
	delete(s.pushed, id)
	s.mu.Unlock()
	s.shard(id).Remove(id)
	s.replicas.Remove(id)
	return nil
}

// builder resolves a spec into the closure the registry runs for the initial
// build and every drift-triggered rebuild. The dataset and oracle are
// validated eagerly — creates fail fast on dangling references and malformed
// specs — but re-resolved inside the closure: datasets are mutable through
// PatchDataset, and a rebuild (drift loop, patch fallback, spec change) must
// build over the dataset as it is at build time, not as it was when the
// designer was created.
func (s *Server) builder(spec DesignerSpec) (service.BuildFunc, error) {
	ds, ok := s.Dataset(spec.Dataset)
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q", ErrUnknownID, spec.Dataset)
	}
	if _, err := spec.Oracle.Build(ds); err != nil {
		return nil, err
	}
	cfg, err := spec.Config.Build()
	if err != nil {
		return nil, err
	}
	return func() (service.Engine, error) {
		ds, ok := s.Dataset(spec.Dataset)
		if !ok {
			return nil, fmt.Errorf("%w: dataset %q", ErrUnknownID, spec.Dataset)
		}
		oracle, err := spec.Oracle.Build(ds)
		if err != nil {
			return nil, err
		}
		d, err := NewDesigner(ds, oracle, cfg)
		if err != nil {
			return nil, err
		}
		return &designerEngine{d: d}, nil
	}, nil
}

// localEntry returns the shard registry entry serving id, activating a
// dormant spec when none exists yet: this is the rebuild-on-owner failover —
// a node that stored a designer's spec as a non-owner starts building the
// index the moment query traffic for it lands here (the owner died, or the
// cluster views disagree and someone must answer). The first queries return
// ErrNotReady (HTTP 503) until the build swaps in.
func (s *Server) localEntry(id string) (*service.Entry, error) {
	reg := s.shard(id)
	if entry, ok := reg.Get(id); ok {
		return entry, nil
	}
	s.mu.RLock()
	spec, known := s.specs[id]
	s.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("%w: designer %q", ErrUnknownID, id)
	}
	build, err := s.builder(spec)
	if err != nil {
		return nil, err
	}
	// Promote-not-rebuild: a follower that inherited ownership (or must
	// answer anyway) activates its pushed replica copy instead of rebuilding,
	// as long as the copy is not stale. Read traffic can land here before the
	// reconcile tick notices the ownership change, so the check lives on the
	// activation path too, not just in ensureOwned.
	if entry, ok := s.promoteReplica(id, build); ok {
		if s.designerDeleted(id) {
			reg.Remove(id)
			return nil, fmt.Errorf("%w: designer %q", ErrUnknownID, id)
		}
		return entry, nil
	}
	entry, err := reg.Create(id, build)
	if errors.Is(err, service.ErrDuplicateName) {
		// Lost an activation race; the winner's entry serves.
		if entry, ok := reg.Get(id); ok {
			return entry, nil
		}
	}
	if err == nil && s.designerDeleted(id) {
		// A delete tombstoned the designer between the spec read above and
		// the Create; evict the just-activated entry instead of serving a
		// deleted designer.
		reg.Remove(id)
		return nil, fmt.Errorf("%w: designer %q", ErrUnknownID, id)
	}
	return entry, err
}

// designerDeleted reports whether the designer carries a replicated
// tombstone — the re-check activation paths run after landing an entry, so
// a DELETE racing them cannot leave a zombie index serving.
func (s *Server) designerDeleted(id string) bool {
	e, ok := s.meta.Get(metaKeyDesigner(id))
	return ok && e.Deleted
}

// WaitReady blocks until the designer's in-flight build (if any) finishes,
// returning nil once an index is serving. On a non-owner node this
// activates a dormant designer (see localEntry).
func (s *Server) WaitReady(ctx context.Context, id string) error {
	entry, err := s.localEntry(id)
	if err != nil {
		return err
	}
	return entry.WaitReady(ctx)
}

// DesignerStatus reports a designer's lifecycle state and metrics. A
// designer whose spec is known here but which this node does NOT own
// reports StatusRemote — deliberately without starting a build, so metrics
// scrapes never trigger index work for designers other members serve. A
// dormant designer this node DOES own (ownership failed over before any
// query arrived) is activated: building it is now this node's job, and
// status polls — e.g. a peer relaying create?wait=true — must observe the
// build progressing rather than "remote" forever.
func (s *Server) DesignerStatus(id string) (service.StatusInfo, error) {
	if entry, ok := s.shard(id).Get(id); ok {
		return s.stampSpecVersion(entry.Status()), nil
	}
	s.mu.RLock()
	_, known := s.specs[id]
	s.mu.RUnlock()
	if !known {
		return service.StatusInfo{}, fmt.Errorf("%w: designer %q", ErrUnknownID, id)
	}
	if s.router.OwnedLocally(id) {
		if entry, err := s.localEntry(id); err == nil {
			return s.stampSpecVersion(entry.Status()), nil
		}
	}
	return s.stampSpecVersion(service.StatusInfo{Name: id, Status: service.StatusRemote}), nil
}

// stampSpecVersion annotates a status snapshot with the replicated metadata
// version of the designer's spec, so operators can compare convergence
// across nodes (`spec_version` equal everywhere ⇒ anti-entropy has settled).
func (s *Server) stampSpecVersion(info service.StatusInfo) service.StatusInfo {
	if e, ok := s.meta.Get(metaKeyDesigner(info.Name)); ok && !e.Deleted {
		info.SpecVersion = e.Version
	}
	return info
}

// Suggest answers one design query against a designer's serving index.
func (s *Server) Suggest(id string, w []float64) (*Suggestion, error) {
	return s.suggestCtx(context.Background(), id, w)
}

// suggestCtx is the HTTP path's Suggest: when ctx carries a trace recorder,
// the cache and kernel stages land on it.
func (s *Server) suggestCtx(ctx context.Context, id string, w []float64) (*Suggestion, error) {
	entry, err := s.localEntry(id)
	if err != nil {
		return nil, err
	}
	res, err := entry.SuggestCtx(ctx, w)
	if err != nil {
		return nil, err
	}
	return &Suggestion{Weights: res.Weights, Distance: res.Distance, AlreadyFair: res.AlreadyFair}, nil
}

// SuggestBatch answers many queries in one call; see Designer.SuggestBatch.
func (s *Server) SuggestBatch(id string, ws [][]float64) ([]BatchResult, error) {
	return s.suggestBatchCtx(context.Background(), id, ws)
}

func (s *Server) suggestBatchCtx(ctx context.Context, id string, ws [][]float64) ([]BatchResult, error) {
	entry, err := s.localEntry(id)
	if err != nil {
		return nil, err
	}
	batch, err := entry.SuggestBatchCtx(ctx, ws)
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(batch))
	for i, r := range batch {
		if r.Err != nil {
			out[i].Err = r.Err
			continue
		}
		out[i].Suggestion = &Suggestion{
			Weights:     r.Suggestion.Weights,
			Distance:    r.Suggestion.Distance,
			AlreadyFair: r.Suggestion.AlreadyFair,
		}
	}
	return out, nil
}

// RevalidateResult is the outcome of a drift check on a serving designer.
type RevalidateResult struct {
	Healthy bool   `json:"healthy"`
	Detail  string `json:"detail"`
	// Rebuilding reports that the drift check failed and a background
	// rebuild-and-swap was started (or was already running).
	Rebuilding bool `json:"rebuilding"`
}

// Revalidate spot-checks a designer's serving index against a dataset
// (default: the one it was built on). When the index no longer holds, a
// background rebuild starts and the old index keeps serving until the new
// one swaps in — the paper's §1 design loop as a serving-system operation.
func (s *Server) Revalidate(id string, datasetID string) (RevalidateResult, error) {
	entry, err := s.localEntry(id)
	if err != nil {
		return RevalidateResult{}, err
	}
	s.mu.RLock()
	spec, ok := s.specs[id]
	s.mu.RUnlock()
	if !ok {
		return RevalidateResult{}, fmt.Errorf("fairrank: designer %q has no spec", id)
	}
	if datasetID == "" {
		datasetID = spec.Dataset
	}
	against, ok := s.Dataset(datasetID)
	if !ok {
		return RevalidateResult{}, fmt.Errorf("%w: dataset %q", ErrUnknownID, datasetID)
	}
	// When checking against a different dataset (today's data vs the one the
	// index was built on), a failed check must rebuild over THAT dataset:
	// repoint the designer's spec and build closure before triggering the
	// rebuild, so the swap serves the new world, not a fresh copy of the
	// stale one.
	repoint := func() error {
		if datasetID == spec.Dataset {
			return nil
		}
		newSpec := spec
		newSpec.Dataset = datasetID
		build, err := s.builder(newSpec)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.specs[id] = newSpec
		s.mu.Unlock()
		entry.SetBuild(build)
		return nil
	}
	healthy, detail, err := entry.Revalidate(func(eng service.Engine) (bool, string, error) {
		de, ok := eng.(*designerEngine)
		if !ok {
			return false, "", fmt.Errorf("fairrank: designer %q serves a foreign engine", id)
		}
		report, err := de.d.Revalidate(against)
		if err != nil {
			return false, "", err
		}
		// "Passed" rather than "satisfactory": for an unsatisfiable index
		// the probes attest the opposite verdict (directions still unfair).
		detail := fmt.Sprintf("%d/%d drift probes passed",
			report.StillSatisfactory, report.Probes)
		if !report.Healthy() {
			if rerr := repoint(); rerr != nil {
				return false, detail, rerr
			}
		}
		return report.Healthy(), detail, nil
	})
	if err != nil {
		return RevalidateResult{}, err
	}
	return RevalidateResult{Healthy: healthy, Detail: detail, Rebuilding: !healthy}, nil
}

// Rebuild forces a background rebuild-and-swap of a designer's index.
func (s *Server) Rebuild(id string) error {
	entry, err := s.localEntry(id)
	if err != nil {
		return err
	}
	return entry.Rebuild()
}

// DesignerIDs returns every designer id known to this node — locally served
// and remote-owned alike — sorted.
func (s *Server) DesignerIDs() []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.specs))
	for id := range s.specs {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// DatasetIDs returns the registered dataset ids, sorted.
func (s *Server) DatasetIDs() []string {
	s.mu.RLock()
	ids := make([]string, 0, len(s.datasets))
	for id := range s.datasets {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// SaveDir persists the server's state into dir: every dataset as JSON, every
// known designer's spec manifest (remote-owned ones included, so a restarted
// node can still route or fail over for them), and — for locally served
// designers whose build has finished — the index stream itself, so the next
// startup serves without re-running the offline phase.
func (s *Server) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, id := range s.DatasetIDs() {
		ds, _ := s.Dataset(id)
		spec := SpecOfDataset(ds)
		if rev, ok := s.DatasetRevision(id); ok {
			spec.Revision = rev
		}
		if err := writeJSONFile(filepath.Join(dir, id+".dataset.json"), spec); err != nil {
			return err
		}
	}
	for _, id := range s.DesignerIDs() {
		s.mu.RLock()
		spec, ok := s.specs[id]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		if err := writeJSONFile(filepath.Join(dir, id+".designer.json"), spec); err != nil {
			return err
		}
		entry, ok := s.shard(id).Get(id)
		if !ok {
			continue // dormant (remote-owned): the manifest alone suffices
		}
		eng, err := entry.Engine()
		if err != nil {
			continue // still building or failed: manifest alone triggers a rebuild on load
		}
		if err := writeFileAtomic(filepath.Join(dir, id+".index"), eng.SaveIndex); err != nil {
			return fmt.Errorf("fairrank: saving index of %q: %w", id, err)
		}
	}
	// Deleted designers must stay deleted across a restart: drop the files a
	// previous SaveDir wrote for ids that now carry a tombstone, or the next
	// LoadDir would resurrect them. The version vector (below) additionally
	// persists the tombstones themselves, so even a peer re-offering its
	// stale live copy after our restart cannot resurrect the designer.
	versions := make([]metaVersionRecord, 0, s.meta.Len())
	for _, e := range s.meta.Snapshot() {
		rec := metaVersionRecord{Key: e.Key, Version: e.Version, Deleted: e.Deleted}
		if e.Key == cluster.RingKey || e.Key == cluster.ReplicaConfigKey ||
			strings.HasPrefix(e.Key, cluster.ReplicaKeyPrefix) {
			// The membership, replica-config, and publication payloads are
			// tiny and have no manifest file of their own; persisting them
			// whole lets a restarted node resume on its last known ring and
			// replication state (and at their versions, so entries it
			// originates are not silently ignored by peers).
			rec.Payload = e.Payload
		}
		versions = append(versions, rec)
		if !e.Deleted || !strings.HasPrefix(e.Key, "designer/") {
			continue
		}
		id := strings.TrimPrefix(e.Key, "designer/")
		os.Remove(filepath.Join(dir, id+".designer.json"))
		os.Remove(filepath.Join(dir, id+".index"))
	}
	return writeJSONFile(filepath.Join(dir, clusterMetaFile), versions)
}

// clusterMetaFile persists the replicated-metadata version vector alongside
// the data-dir manifests. Without it a restart would re-Put every loaded
// spec at version 1, below any tombstone or newer version the rest of the
// cluster holds — and a designer re-created after the restart would be
// silently deleted by the next anti-entropy exchange.
const clusterMetaFile = "cluster-meta.json"

// metaVersionRecord is one persisted (key, version, tombstone) triple.
// Payload is carried only for the membership entry, whose bytes live
// nowhere else in the data dir.
type metaVersionRecord struct {
	Key     string          `json:"key"`
	Version uint64          `json:"version"`
	Deleted bool            `json:"deleted,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// LoadDir restores SaveDir state: datasets first, then designers — from
// their index file when present and loadable (serving immediately), falling
// back to a background rebuild from the manifest otherwise.
func (s *Server) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".dataset.json")
		if !ok {
			continue
		}
		var spec DatasetSpec
		if err := readJSONFile(filepath.Join(dir, e.Name()), &spec); err != nil {
			return err
		}
		ds, err := spec.Build()
		if err != nil {
			return fmt.Errorf("fairrank: dataset %q: %w", id, err)
		}
		if err := s.AddDataset(id, ds); err != nil {
			return err
		}
		if spec.Revision != 0 && spec.Revision != ds.Fingerprint() {
			// The dataset was patched before the save: restore the revision
			// lineage (AddDataset seeded the content fingerprint) and re-record
			// the spec so the replicated entry carries it too.
			s.mu.Lock()
			s.datasetRevs[id] = spec.Revision
			s.mu.Unlock()
			if payload, merr := json.Marshal(spec); merr == nil {
				s.meta.Put(metaKeyDataset(id), payload)
			}
		}
	}
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".designer.json")
		if !ok {
			continue
		}
		var spec DesignerSpec
		if err := readJSONFile(filepath.Join(dir, e.Name()), &spec); err != nil {
			return err
		}
		if err := s.loadDesigner(dir, id, spec); err != nil {
			return err
		}
	}
	// Lift the re-Put entries (all at version 1 now) back to their persisted
	// versions and recreate tombstones, so this replica rejoins anti-entropy
	// where it left off instead of below the rest of the cluster. Records
	// that carry payload bytes (the membership) are applied whole, restoring
	// the last known ring at its version.
	var versions []metaVersionRecord
	if err := readJSONFile(filepath.Join(dir, clusterMetaFile), &versions); err == nil {
		for _, r := range versions {
			if len(r.Payload) > 0 {
				s.applyEntries([]cluster.MetaEntry{{
					Key: r.Key, Version: r.Version, Deleted: r.Deleted, Payload: r.Payload,
				}})
				continue
			}
			s.meta.Restore(r.Key, r.Version, r.Deleted)
		}
	}
	// A node booted with -replicas set re-originates the factor ABOVE every
	// restored version, so restarting a node with a new flag value is the
	// supported way to change k cluster-wide (the higher version wins the
	// gossip merge everywhere).
	if s.cfgReplicas > 0 {
		s.originateReplicaConfig(s.cfgReplicas)
	}
	return nil
}

// loadDesigner restores one designer: from its persisted index when this
// node owns it and the stream loads cleanly against the dataset
// (fingerprint checked), otherwise by scheduling a fresh background build.
// A designer owned by another cluster member is restored as a dormant spec
// only — the owner serves it, and this node keeps the spec for routing and
// failover.
func (s *Server) loadDesigner(dir, id string, spec DesignerSpec) error {
	build, err := s.builder(spec)
	if err != nil {
		return fmt.Errorf("fairrank: designer %q: %w", id, err)
	}
	s.mu.Lock()
	s.specs[id] = spec
	s.mu.Unlock()
	if err := s.putDesignerMeta(id, spec); err != nil {
		return err
	}
	if !s.router.OwnedLocally(id) {
		return nil
	}
	path := filepath.Join(dir, id+".index")
	if raw, err := os.ReadFile(path); err == nil {
		ds, _ := s.Dataset(spec.Dataset)
		oracle, oerr := spec.Oracle.Build(ds)
		var d *Designer
		if oerr == nil {
			d, oerr = LoadDesigner(bytes.NewReader(raw), ds, oracle)
		}
		if oerr == nil {
			// Re-arm the loaded designer with its build configuration so a
			// later PatchDataset can honor its churn threshold (a loaded index
			// has no retained build state, so its first patch rebuilds either
			// way — but with the right Config, not the zero value).
			if cfg, cerr := spec.Config.Build(); cerr == nil {
				d.RestoreConfig(cfg)
			}
			// Auto-migrate: a store in the PR-2 gob format is re-saved flat
			// right after it loads, so the slow decode is paid exactly once
			// per store, not on every restart.
			if IsLegacyIndexStream(raw) {
				if werr := writeFileAtomic(path, d.SaveIndex); werr != nil {
					s.logf("fairrank: designer %q: legacy index loaded but re-save failed: %v", id, werr)
				} else {
					s.logf("fairrank: designer %q: migrated legacy index to flat format", id)
				}
			}
			_, rerr := s.shard(id).CreateReady(id, &designerEngine{d: d}, build)
			return rerr
		}
		// Corrupt or mismatched index: fall through to a rebuild.
	}
	_, err = s.shard(id).Create(id, build)
	return err
}

// ClusterStatus reports this node's view of the cluster: ring membership
// with health, which member owns each known designer, and a per-shard
// metrics rollup — the body of GET /cluster.
func (s *Server) ClusterStatus() ClusterStatus {
	ids := s.DesignerIDs()
	k := s.replicaFactor()
	owned := make(map[string][]string)      // member id → designer ids
	replicaFor := make(map[string][]string) // member id → designer ids it follows
	for _, id := range ids {
		owner := s.router.Owner(id).ID
		owned[owner] = append(owned[owner], id)
		if k > 0 {
			for _, f := range s.router.ReplicaSet(id, k)[1:] {
				replicaFor[f.ID] = append(replicaFor[f.ID], id)
			}
		}
	}
	status := ClusterStatus{
		NodeID:      s.router.NodeID(),
		RingVersion: s.router.RingVersion(),
		MetaEntries: s.meta.Len(),
		Replicas:    k,
	}
	for _, m := range s.router.Members() {
		ms := MemberStatus{ID: m.ID, URL: m.URL, Self: m.ID == s.router.NodeID(),
			Healthy: true, Designers: owned[m.ID], ReplicaFor: replicaFor[m.ID]}
		for _, p := range s.router.Peers() {
			if p.Member().ID == m.ID {
				ms.Healthy = p.Healthy()
				ms.LastError, _ = p.LastError()
				break
			}
		}
		status.Members = append(status.Members, ms)
	}
	for i, reg := range s.router.Shards() {
		status.Shards = append(status.Shards, ShardStatus{
			Index:     i,
			Designers: reg.Names(),
			Stats:     reg.Stats(),
		})
	}
	return status
}

// writeFileAtomic writes through a temp file and renames it into place, so
// a crash or full disk mid-save never truncates the previous good copy —
// the next startup can always load something.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := fill(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func writeJSONFile(path string, v any) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(v)
	})
}

func readJSONFile(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}
