package fairrank

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"fairrank/internal/service"
)

// Server-side dataset mutability (PATCH /v1/datasets/{id}): PatchDataset
// applies a DatasetDelta to a registered dataset and splices the change into
// every designer index this node serves over it — incrementally
// (Designer.Patch → engine repair) when the churn is below the designer's
// threshold, by rebuild otherwise — while queries keep answering from the old
// index until the atomic swap. The patched dataset's spec (revision included)
// then replicates through the normal metadata channels; peers converge by
// running the same splice against their own copies when they materialize it,
// and reconcile's detect-and-patch sweep repairs any index that slipped
// through (a replica promoted from a pre-patch copy, a handoff that raced the
// patch).

// DatasetPatchResult is the outcome of one PatchDataset call.
type DatasetPatchResult struct {
	ID string `json:"id"`
	// N is the patched dataset's item count.
	N int `json:"n"`
	// Revision is the dataset's new revision fingerprint — the previous
	// revision chained with the patched content's fingerprint, so peers that
	// applied the same patches in the same order report the same value.
	Revision uint64 `json:"revision"`
	// Designers reports the splice outcome for every designer index this node
	// serves over the dataset. Dormant specs and remote-owned designers are
	// absent: their serving nodes splice their own copies when the patched
	// spec replicates to them.
	Designers []DesignerPatchResult `json:"designers,omitempty"`
}

// DesignerPatchResult is the splice outcome for one locally served designer.
type DesignerPatchResult struct {
	ID string `json:"id"`
	// Repaired reports the incremental path: the index was spliced in place
	// instead of rebuilt from scratch. Either way the designer now answers
	// byte-identically to a fresh build over the patched dataset.
	Repaired bool   `json:"repaired"`
	Error    string `json:"error,omitempty"`
}

// PatchDataset applies delta to a registered dataset: the survivors keep
// their order, additions land at the tail, and the dataset's revision chains
// forward. Every designer index this node serves over the dataset is then
// spliced to the new state (see DatasetPatchResult); a designer whose splice
// fails keeps serving its previous index and reports the error, without
// failing the dataset patch itself. An empty delta is a no-op reporting the
// current revision.
func (s *Server) PatchDataset(id string, delta DatasetDelta) (DatasetPatchResult, error) {
	s.patchMu.Lock()
	defer s.patchMu.Unlock()
	s.mu.RLock()
	old, ok := s.datasets[id]
	s.mu.RUnlock()
	if !ok {
		return DatasetPatchResult{}, fmt.Errorf("%w: dataset %q", ErrUnknownID, id)
	}
	if delta.Empty() {
		rev, _ := s.DatasetRevision(id)
		return DatasetPatchResult{ID: id, N: old.N(), Revision: rev}, nil
	}
	newDS, err := ApplyDelta(old, delta)
	if err != nil {
		return DatasetPatchResult{}, err
	}
	s.mu.Lock()
	rev := s.datasetRevs[id]
	if rev == 0 {
		rev = old.Fingerprint()
	}
	rev = ChainRevision(rev, newDS.Fingerprint())
	s.datasets[id] = newDS
	s.datasetRevs[id] = rev
	s.mu.Unlock()
	spec := SpecOfDataset(newDS)
	spec.Revision = rev
	payload, merr := json.Marshal(spec)
	if merr != nil {
		return DatasetPatchResult{}, merr
	}
	s.meta.Put(metaKeyDataset(id), payload)
	s.patchTotal.Add(1)
	s.logf("fairrank: patch: dataset %q now %d item(s) at revision %#x (-%d/+%d)",
		id, newDS.N(), rev, len(delta.Removed), len(delta.Added))
	res := DatasetPatchResult{ID: id, N: newDS.N(), Revision: rev}
	res.Designers = s.patchLocalDesigners(id)
	s.replicaTick()
	return res, nil
}

// patchLocalDesigners splices the current state of dataset datasetID into
// every designer index this node holds over it, one entry at a time. Dormant
// specs are skipped — when a build or failover activates them later, the
// late-bound build closure resolves the dataset as it is then.
func (s *Server) patchLocalDesigners(datasetID string) []DesignerPatchResult {
	var out []DesignerPatchResult
	for _, id := range s.DesignerIDs() {
		s.mu.RLock()
		spec, known := s.specs[id]
		s.mu.RUnlock()
		if !known || spec.Dataset != datasetID {
			continue
		}
		entry, held := s.shard(id).Get(id)
		if !held {
			continue
		}
		repaired, err := s.patchEntry(id, entry, spec)
		r := DesignerPatchResult{ID: id, Repaired: repaired}
		if err != nil {
			r.Error = err.Error()
			s.logf("fairrank: patch: designer %q failed to follow dataset %q: %v", id, datasetID, err)
		}
		out = append(out, r)
	}
	return out
}

// patchEntry swaps entry's engine for one answering over the current state of
// its dataset, through the registry's single build slot (Entry.Patch): a
// patch racing a background build waits for the build's swap and then applies
// to whatever won. Everything — the delta included — is therefore derived
// inside the apply closure from the engine it is handed; an engine that
// already answers for the current dataset state is a no-op (no generation
// bump, no cache flush). Incremental repair vs rebuild is Designer.Patch's
// call; a schema change, which no delta can express, rebuilds from scratch
// under the same atomic swap.
func (s *Server) patchEntry(id string, entry *service.Entry, spec DesignerSpec) (repaired bool, err error) {
	begin := time.Now()
	applied := false
	err = entry.Patch(func(eng service.Engine) (service.Engine, error) {
		de, ok := eng.(*designerEngine)
		if !ok {
			return nil, fmt.Errorf("fairrank: designer %q serves a foreign engine", id)
		}
		cur, ok := s.Dataset(spec.Dataset)
		if !ok {
			return nil, fmt.Errorf("%w: dataset %q", ErrUnknownID, spec.Dataset)
		}
		if de.d.ds.Fingerprint() == cur.Fingerprint() {
			return nil, nil // already answers for this state; keep serving
		}
		oracle, oerr := spec.Oracle.Build(cur)
		if oerr != nil {
			return nil, oerr
		}
		delta, diffable := DiffDatasets(de.d.ds, cur)
		if !diffable {
			cfg, cerr := spec.Config.Build()
			if cerr != nil {
				return nil, cerr
			}
			nd, nerr := NewDesigner(cur, oracle, cfg)
			if nerr != nil {
				return nil, nerr
			}
			applied = true
			return &designerEngine{d: nd}, nil
		}
		nd, rep, perr := de.d.Patch(cur, oracle, delta)
		if perr != nil {
			return nil, perr
		}
		repaired, applied = rep, true
		return &designerEngine{d: nd}, nil
	})
	if err != nil || !applied {
		return repaired, err
	}
	if repaired {
		s.patchRepairs.Add(1)
		s.patchDur.observe(time.Since(begin))
		s.logf("fairrank: patch: designer %q index repaired in place (%.1fms)",
			id, float64(time.Since(begin).Microseconds())/1e3)
	} else {
		s.patchRebuilds.Add(1)
		s.logf("fairrank: patch: designer %q rebuilt (churn above threshold or repair unsupported)", id)
	}
	return repaired, nil
}

// repairStale is reconcile's detect-and-patch leg: every designer index this
// node holds whose engine was built over an older state of its dataset — a
// replica copy promoted after the dataset moved on, a handoff that raced a
// patch, a patch push this node missed while down — is spliced forward to the
// current state. The detection is one fingerprint compare per designer, so an
// idle tick costs nothing; the splices run on one background goroutine,
// coalesced so a slow rebuild can never back up the gossip loop.
func (s *Server) repairStale() {
	if !s.repairBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.repairBusy.Store(false)
		for _, id := range s.DesignerIDs() {
			s.mu.RLock()
			spec, known := s.specs[id]
			s.mu.RUnlock()
			if !known {
				continue
			}
			entry, held := s.shard(id).Get(id)
			if !held {
				continue
			}
			eng, err := entry.Engine()
			if err != nil {
				continue // building or failed; the build resolves the current dataset itself
			}
			de, ok := eng.(*designerEngine)
			if !ok {
				continue
			}
			cur, ok := s.Dataset(spec.Dataset)
			if !ok || de.d.ds.Fingerprint() == cur.Fingerprint() {
				continue
			}
			if _, perr := s.patchEntry(id, entry, spec); perr != nil {
				s.logf("fairrank: patch: reconcile repair of designer %q failed: %v", id, perr)
			}
		}
	}()
}

// patchBoundsSec are the bucket upper bounds (seconds) of the repair latency
// histogram — whole decades, because repairs span sub-millisecond 2D merges
// to multi-second exact-mode refits.
var patchBoundsSec = []float64{0.001, 0.01, 0.1, 1, 10}

// patchHist is a fixed-bucket latency histogram for incremental repairs
// (len(patchBoundsSec) buckets plus overflow), rendered by prom.go as
// fairrank_patch_repair_seconds.
type patchHist struct {
	counts [6]atomic.Int64 // len(patchBoundsSec)+1: one per bound plus overflow
	sumNs  atomic.Int64
}

func (h *patchHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(patchBoundsSec) && sec > patchBoundsSec[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// snapshot returns the per-bucket (non-cumulative) counts and the total
// observed seconds, in the shape obs.Prom.Histogram renders.
func (h *patchHist) snapshot() (counts []int64, sumSeconds float64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, float64(h.sumNs.Load()) / 1e9
}
