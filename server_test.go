package fairrank

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fairrank/internal/datagen"
	"fairrank/internal/service"
)

// testServer spins up the HTTP API over a fresh Server.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// doJSON posts (or gets) a JSON body and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(raw)
	} else {
		reader = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// biasedSpec returns a small biased 2D dataset as a wire spec.
func biasedSpec(t *testing.T, seed int64) DatasetSpec {
	t.Helper()
	ds, err := datagen.Biased(80, 2, 0.5, 0.3, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return SpecOfDataset(ds)
}

func TestHTTPEndToEnd(t *testing.T) {
	_, ts := testServer(t)

	var created struct {
		ID string `json:"id"`
		N  int    `json:"n"`
		D  int    `json:"d"`
	}
	spec := biasedSpec(t, 11)
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"id": "admissions", "dataset": spec}, &created); code != http.StatusCreated {
		t.Fatalf("create dataset: HTTP %d", code)
	}
	if created.N != 80 || created.D != 2 {
		t.Fatalf("created = %+v", created)
	}
	// Duplicate id → conflict.
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets", map[string]any{"id": "admissions", "dataset": spec}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate dataset: HTTP %d", code)
	}

	designer := map[string]any{
		"id": "fair-admissions",
		"spec": DesignerSpec{
			Dataset: "admissions",
			Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
			Config:  ConfigSpec{Mode: "2d"},
		},
	}
	var status service.StatusInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/designers?wait=true", designer, &status); code != http.StatusAccepted {
		t.Fatalf("create designer: HTTP %d", code)
	}
	if status.Status != service.StatusReady || status.Mode != "2d" {
		t.Fatalf("status after wait=true: %+v", status)
	}

	if code := doJSON(t, "GET", ts.URL+"/v1/designers/fair-admissions/status", nil, &status); code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/designers/nope/status", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown designer status: HTTP %d", code)
	}

	// Single suggest.
	var single suggestionJSON
	if code := doJSON(t, "POST", ts.URL+"/v1/designers/fair-admissions/suggest",
		suggestRequest{Weights: []float64{0.5, 0.5}}, &single); code != http.StatusOK {
		t.Fatalf("suggest: HTTP %d", code)
	}
	if len(single.Weights) != 2 || single.Error != "" {
		t.Fatalf("suggestion = %+v", single)
	}

	// Batch suggest.
	var batch struct {
		Results []suggestionJSON `json:"results"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/designers/fair-admissions/suggest",
		suggestRequest{Batch: [][]float64{{0.5, 0.5}, {0.9, 0.1}, {1, 2, 3}}}, &batch); code != http.StatusOK {
		t.Fatalf("batch suggest: HTTP %d", code)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch results = %+v", batch)
	}
	if batch.Results[0].Error != "" || batch.Results[2].Error == "" {
		t.Fatalf("batch error placement wrong: %+v", batch.Results)
	}
	// Batch answers must equal the single-call answers.
	if batch.Results[0].Distance != single.Distance {
		t.Fatalf("batch answer %v differs from single %v", batch.Results[0], single)
	}

	// Revalidate against the designer's own dataset: healthy, no rebuild.
	var reval RevalidateResult
	if code := doJSON(t, "POST", ts.URL+"/v1/designers/fair-admissions/revalidate", map[string]any{}, &reval); code != http.StatusOK {
		t.Fatalf("revalidate: HTTP %d", code)
	}
	if !reval.Healthy || reval.Rebuilding {
		t.Fatalf("revalidate on unchanged data = %+v", reval)
	}

	// Metrics accumulate the traffic above.
	var metrics struct {
		Designers map[string]service.StatusInfo `json:"designers"`
	}
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	m := metrics.Designers["fair-admissions"].Metrics
	if m.Queries != 1 || m.Batches != 1 || m.BatchQueries != 3 {
		t.Fatalf("metrics = %+v", m)
	}

	// Malformed bodies are 400s, not panics.
	resp, err := http.Post(ts.URL+"/v1/designers/fair-admissions/suggest", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d", resp.StatusCode)
	}
}

// The HTTP answers must be identical to direct Designer.Suggest calls.
func TestHTTPMatchesDirectDesigner(t *testing.T) {
	srv, ts := testServer(t)
	ds, err := datagen.Biased(80, 2, 0.5, 0.3, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := MinShare(ds, "group", "protected", 0.25, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewDesigner(ds, oracle, Config{Mode: Mode2D})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("d", ds); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateDesigner("x", DesignerSpec{
		Dataset: "d",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
		Config:  ConfigSpec{Mode: "2d"},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]float64{{0.5, 0.5}, {0.9, 0.1}, {0.05, 0.95}} {
		want, err := direct.Suggest(w)
		if err != nil {
			t.Fatal(err)
		}
		var got suggestionJSON
		if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/designers/x/suggest", ts.URL),
			suggestRequest{Weights: w}, &got); code != http.StatusOK {
			t.Fatalf("suggest: HTTP %d", code)
		}
		if got.Distance != want.Distance || got.AlreadyFair != want.AlreadyFair {
			t.Fatalf("HTTP answer %+v differs from direct %+v", got, want)
		}
		for k := range want.Weights {
			if got.Weights[k] != want.Weights[k] {
				t.Fatalf("HTTP weights %v differ from direct %v", got.Weights, want.Weights)
			}
		}
	}
}

// Concurrent HTTP clients hammering single and batch suggests — run with
// -race in CI.
func TestHTTPConcurrentClients(t *testing.T) {
	srv, ts := testServer(t)
	ds, err := datagen.Biased(60, 2, 0.5, 0.3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("d", ds); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateDesigner("x", DesignerSpec{
		Dataset: "d",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var body any
				if i%2 == 0 {
					body = suggestRequest{Weights: []float64{0.5, 0.5}}
				} else {
					body = suggestRequest{Batch: [][]float64{{0.4, 0.6}, {0.7, 0.3}}}
				}
				raw, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+"/v1/designers/x/suggest", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: HTTP %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st, err := srv.DesignerStatus("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Metrics.Queries + st.Metrics.BatchQueries; got != 6*10+6*10*2 {
		t.Fatalf("served %d queries, want 180", got)
	}
}

// SaveDir/LoadDir must restore datasets and designers, serving identical
// answers without a rebuild.
func TestServerSaveLoadDir(t *testing.T) {
	srv, _ := testServer(t)
	dir := t.TempDir()
	ds, err := datagen.Biased(70, 2, 0.5, 0.3, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("d", ds); err != nil {
		t.Fatal(err)
	}
	spec := DesignerSpec{
		Dataset: "d",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
	}
	if err := srv.CreateDesigner("x", spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	want, err := srv.Suggest("x", []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	restored := NewServer()
	if err := restored.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	st, err := restored.DesignerStatus("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != service.StatusReady {
		t.Fatalf("restored designer should serve from the persisted index, status %v", st.Status)
	}
	got, err := restored.Suggest("x", []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != want.Distance || got.Weights[0] != want.Weights[0] || got.Weights[1] != want.Weights[1] {
		t.Fatalf("restored answer %+v differs from original %+v", got, want)
	}
	// Loading an empty/missing dir is a no-op.
	if err := NewServer().LoadDir(dir + "/nope"); err != nil {
		t.Fatal(err)
	}
}

// A failed duplicate create must leave the existing designer fully intact
// (spec included — Revalidate and SaveDir depend on it), and ids that would
// escape or break the data directory are rejected up front.
func TestServerDuplicateAndBadIDs(t *testing.T) {
	srv, _ := testServer(t)
	ds, err := datagen.Biased(60, 2, 0.5, 0.3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("d", ds); err != nil {
		t.Fatal(err)
	}
	spec := DesignerSpec{
		Dataset: "d",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
	}
	if err := srv.CreateDesigner("x", spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateDesigner("x", spec); err == nil {
		t.Fatal("duplicate designer id should error")
	}
	// The original designer still has its spec: Revalidate works and SaveDir
	// persists it.
	if _, err := srv.Revalidate("x", ""); err != nil {
		t.Fatalf("revalidate after failed duplicate create: %v", err)
	}
	dir := t.TempDir()
	if err := srv.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	restored := NewServer()
	if err := restored.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.DesignerStatus("x"); err != nil {
		t.Fatalf("designer lost after duplicate-create + save/load: %v", err)
	}
	for _, bad := range []string{"", "../evil", "a/b", "a b", ".hidden", "x\x00y"} {
		if err := srv.AddDataset(bad, ds); err == nil {
			t.Errorf("dataset id %q should be rejected", bad)
		}
		if err := srv.CreateDesigner(bad, spec); err == nil {
			t.Errorf("designer id %q should be rejected", bad)
		}
	}
}

// TestServerRevalidateDriftTriggersRebuild runs the drift loop — revalidate
// against tomorrow's data, rebuild-and-swap on failure — for a designer in
// each of the three engine modes: every engine implements Revalidate through
// the internal/engine interface, so the HTTP 409 the non-2D modes used to
// return is gone.
func TestServerRevalidateDriftTriggersRebuild(t *testing.T) {
	for _, tc := range []struct {
		mode   string
		config ConfigSpec
	}{
		{mode: "2d", config: ConfigSpec{Mode: "2d"}},
		// Capped arrangement on purpose: its labels are approximate, and
		// the witness-baseline filter is what keeps revalidate healthy on
		// unchanged data instead of triggering rebuilds forever.
		{mode: "exact", config: ConfigSpec{Mode: "exact", MaxHyperplanes: 300}},
		{mode: "approx", config: ConfigSpec{Mode: "approx", Cells: 200, MaxHyperplanes: 300}},
	} {
		t.Run(tc.mode, func(t *testing.T) {
			srv, _ := testServer(t)
			ds, err := datagen.Biased(100, 2, 0.5, 0.25, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			drifted, err := datagen.Biased(100, 2, 0.5, 0.9, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.AddDataset("live", ds); err != nil {
				t.Fatal(err)
			}
			if err := srv.AddDataset("tomorrow", drifted); err != nil {
				t.Fatal(err)
			}
			if err := srv.CreateDesigner("x", DesignerSpec{
				Dataset: "live",
				Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.2, Share: 0.4},
				Config:  tc.config,
			}); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := srv.WaitReady(ctx, "x"); err != nil {
				t.Fatal(err)
			}
			d, _ := srv.DesignerStatus("x")
			if d.Mode != tc.mode {
				t.Fatalf("mode = %v, want %v", d.Mode, tc.mode)
			}
			res, err := srv.Revalidate("x", "")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Healthy {
				t.Fatalf("unchanged data should revalidate cleanly: %+v", res)
			}
			// Heavily drifted data: not guaranteed to break every probe, but
			// when it does, a rebuild must start; either way the call must
			// succeed and the designer must keep serving.
			res, err = srv.Revalidate("x", "tomorrow")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Healthy {
				if !res.Rebuilding {
					t.Fatalf("drifted revalidate must trigger a rebuild: %+v", res)
				}
				if err := srv.WaitReady(ctx, "x"); err != nil {
					t.Fatal(err)
				}
				// The rebuild repointed the designer at the drifted dataset,
				// so a fresh check against it must now come back healthy.
				res, err = srv.Revalidate("x", "tomorrow")
				if err != nil {
					t.Fatal(err)
				}
				if !res.Healthy {
					t.Fatalf("rebuild did not repoint at the drifted dataset: %+v", res)
				}
			}
			if _, err := srv.Suggest("x", []float64{0.5, 0.5}); err != nil {
				t.Fatalf("designer stopped serving after revalidate: %v", err)
			}
		})
	}
}
