package fairrank

import (
	"errors"
	"fmt"

	"fairrank/internal/service"
)

// This file defines the declarative JSON specs the serving layer
// (fairrank.Server, cmd/fairrankd) uses to describe datasets, oracles, and
// designer configurations — both over the wire and in the data directory's
// manifests, so a restarted server can rebuild exactly what it was serving.

// DatasetSpec is the JSON shape of a dataset: scoring attribute names, item
// rows, and categorical type attributes.
type DatasetSpec struct {
	Scoring []string       `json:"scoring"`
	Rows    [][]float64    `json:"rows"`
	Types   []TypeAttrSpec `json:"types,omitempty"`
	// Revision is the dataset's revision fingerprint: the content fingerprint
	// at registration, chained through every applied patch (ChainRevision).
	// It rides along in the replicated metadata and the data-dir manifests so
	// every node agrees on the patch lineage, not just the current bytes;
	// 0 — specs written before datasets became patchable — means "the content
	// fingerprint".
	Revision uint64 `json:"revision,omitempty"`
}

// TypeAttrSpec is one categorical attribute of a DatasetSpec.
type TypeAttrSpec struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels"`
	Values []int    `json:"values"`
}

// Build materializes the dataset.
func (s DatasetSpec) Build() (*Dataset, error) {
	ds, err := NewDataset(s.Scoring, s.Rows)
	if err != nil {
		return nil, err
	}
	for _, ta := range s.Types {
		if err := ds.AddTypeAttr(ta.Name, ta.Labels, ta.Values); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// SpecOfDataset is Build's inverse: the spec serving a dataset back out of
// the API (and into the data directory's manifests).
func SpecOfDataset(ds *Dataset) DatasetSpec {
	spec := DatasetSpec{Scoring: append([]string(nil), ds.ScoringNames()...)}
	spec.Rows = make([][]float64, ds.N())
	for i := range spec.Rows {
		spec.Rows[i] = append([]float64(nil), ds.Item(i)...)
	}
	for _, ta := range ds.TypeAttrs() {
		spec.Types = append(spec.Types, TypeAttrSpec{
			Name:   ta.Name,
			Labels: append([]string(nil), ta.Labels...),
			Values: append([]int(nil), ta.Values...),
		})
	}
	return spec
}

// GroupBoundSpec is the JSON shape of a GroupBound; omitted Min/Max mean
// "unbounded" (−1).
type GroupBoundSpec struct {
	Group string `json:"group"`
	Min   *int   `json:"min,omitempty"`
	Max   *int   `json:"max,omitempty"`
}

func (b GroupBoundSpec) bound() GroupBound {
	gb := GroupBound{Group: b.Group, Min: -1, Max: -1}
	if b.Min != nil {
		gb.Min = *b.Min
	}
	if b.Max != nil {
		gb.Max = *b.Max
	}
	return gb
}

// OracleSpec declares a fairness oracle. Kind selects the constructor:
//
//   - "topk":         Attr, K, Bounds            → TopKOracle
//   - "max_share":    Attr, Group, TopFrac, Slack → MaxShare
//   - "min_share":    Attr, Group, TopFrac, Share → MinShare
//   - "proportional": Attr, TopFrac, Slack        → Proportional
//   - "prefix":       Attr, Group, K, P, PrefixSlack → prefix fairness
//   - "all" / "any":  Of (member specs)           → AllOf / AnyOf
type OracleSpec struct {
	Kind        string           `json:"kind"`
	Attr        string           `json:"attr,omitempty"`
	Group       string           `json:"group,omitempty"`
	K           int              `json:"k,omitempty"`
	TopFrac     float64          `json:"top_frac,omitempty"`
	Slack       float64          `json:"slack,omitempty"`
	Share       float64          `json:"share,omitempty"`
	P           float64          `json:"p,omitempty"`
	PrefixSlack int              `json:"prefix_slack,omitempty"`
	Bounds      []GroupBoundSpec `json:"bounds,omitempty"`
	Of          []OracleSpec     `json:"of,omitempty"`
}

// Build materializes the oracle against the dataset.
func (s OracleSpec) Build(ds *Dataset) (Oracle, error) {
	switch s.Kind {
	case "topk":
		bounds := make([]GroupBound, len(s.Bounds))
		for i, b := range s.Bounds {
			bounds[i] = b.bound()
		}
		return TopKOracle(ds, s.Attr, s.K, bounds)
	case "max_share":
		return MaxShare(ds, s.Attr, s.Group, s.TopFrac, s.Slack)
	case "min_share":
		return MinShare(ds, s.Attr, s.Group, s.TopFrac, s.Share)
	case "proportional":
		return Proportional(ds, s.Attr, s.TopFrac, s.Slack)
	case "prefix":
		return PrefixOracle(ds, s.Attr, s.Group, s.K, s.P, s.PrefixSlack)
	case "all", "any":
		if len(s.Of) == 0 {
			return nil, fmt.Errorf("fairrank: oracle kind %q needs members in \"of\"", s.Kind)
		}
		members := make([]Oracle, len(s.Of))
		for i, m := range s.Of {
			o, err := m.Build(ds)
			if err != nil {
				return nil, err
			}
			members[i] = o
		}
		if s.Kind == "all" {
			return AllOf(members...), nil
		}
		return AnyOf(members...), nil
	case "":
		return nil, errors.New("fairrank: oracle spec is missing \"kind\"")
	default:
		return nil, fmt.Errorf("fairrank: unknown oracle kind %q", s.Kind)
	}
}

// ConfigSpec is the JSON shape of Config, with the engine mode as a string
// ("auto", "2d", "exact", "approx").
type ConfigSpec struct {
	Mode                   string `json:"mode,omitempty"`
	Cells                  int    `json:"cells,omitempty"`
	Seed                   int64  `json:"seed,omitempty"`
	PruneTopK              int    `json:"prune_top_k,omitempty"`
	MaxHyperplanes         int    `json:"max_hyperplanes,omitempty"`
	DisableArrangementTree bool   `json:"disable_arrangement_tree,omitempty"`
	CellRegionCap          int    `json:"cell_region_cap,omitempty"`
	Workers                int    `json:"workers,omitempty"`
	RefineQueries          bool   `json:"refine_queries,omitempty"`
	// RepairChurnFrac bounds how large a dataset patch (removals plus
	// additions, as a fraction of the pre-patch item count) may be spliced
	// into this designer's index incrementally; larger deltas rebuild. 0
	// picks DefaultRepairChurnFrac, negative disables incremental repair.
	RepairChurnFrac float64 `json:"repair_churn_frac,omitempty"`
}

// Build materializes the Config.
func (s ConfigSpec) Build() (Config, error) {
	cfg := Config{
		Cells:                  s.Cells,
		Seed:                   s.Seed,
		PruneTopK:              s.PruneTopK,
		MaxHyperplanes:         s.MaxHyperplanes,
		DisableArrangementTree: s.DisableArrangementTree,
		CellRegionCap:          s.CellRegionCap,
		Workers:                s.Workers,
		RefineQueries:          s.RefineQueries,
		RepairChurnFrac:        s.RepairChurnFrac,
	}
	switch s.Mode {
	case "", "auto":
		cfg.Mode = ModeAuto
	case "2d":
		cfg.Mode = Mode2D
	case "exact":
		cfg.Mode = ModeExact
	case "approx":
		cfg.Mode = ModeApprox
	default:
		return Config{}, fmt.Errorf("fairrank: unknown engine mode %q", s.Mode)
	}
	return cfg, nil
}

// DesignerSpec declares a designer: the dataset it serves, the fairness
// oracle, and the engine configuration.
type DesignerSpec struct {
	Dataset string     `json:"dataset"`
	Oracle  OracleSpec `json:"oracle"`
	Config  ConfigSpec `json:"config,omitempty"`
}

// ClusterStatus is the wire shape of GET /cluster: one node's view of the
// ring, who owns which designer, and the per-shard metrics rollup.
type ClusterStatus struct {
	NodeID string `json:"node_id"`
	// RingVersion is the version of the membership the node's ring was
	// built from: 0 for the static boot configuration, then the version of
	// the latest applied ring/members entry. Nodes whose RingVersion
	// matches agree on ownership of every designer.
	RingVersion uint64 `json:"ring_version"`
	// MetaEntries counts the replicated metadata entries this node holds
	// (tombstones included) — equal counts across nodes after an
	// anti-entropy round indicate converged metadata.
	MetaEntries int `json:"meta_entries"`
	// Replicas is the effective replication factor k (followers per
	// designer): the -replicas flag as converged through the gossiped
	// replicas/config entry. 0 means owner-only serving.
	Replicas int            `json:"replicas"`
	Members  []MemberStatus `json:"members"`
	Shards   []ShardStatus  `json:"shards"`
}

// MemberStatus is one ring member as seen from the reporting node: identity,
// last known health, and the designers the reporting node would route to it.
type MemberStatus struct {
	ID        string   `json:"id"`
	URL       string   `json:"url,omitempty"`
	Self      bool     `json:"self,omitempty"`
	Healthy   bool     `json:"healthy"`
	LastError string   `json:"last_error,omitempty"`
	Designers []string `json:"designers,omitempty"`
	// ReplicaFor lists the designers this member follows as a read replica
	// (owner + ReplicaFor partition the read traffic for each designer).
	ReplicaFor []string `json:"replica_for,omitempty"`
}

// ShardStatus is one in-process shard registry: the designers it holds and
// their aggregated serving metrics.
type ShardStatus struct {
	Index     int                   `json:"index"`
	Designers []string              `json:"designers"`
	Stats     service.RegistryStats `json:"stats"`
}
