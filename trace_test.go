package fairrank

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"fairrank/internal/obs"
)

// tracesDoc mirrors the GET /debug/traces response body.
type tracesDoc struct {
	NodeID        string      `json:"node_id"`
	TotalRecorded uint64      `json:"total_recorded"`
	Traces        []obs.Trace `json:"traces"`
}

func getTraces(t *testing.T, url, id string) tracesDoc {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc tracesDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// A Suggest that lands on the non-owner and is forwarded must produce ONE
// trace under the caller's id whose spans cover the full path — decode and
// forward on the entry node plus the owner's stages merged back through the
// X-Fairrank-Spans trailer — with both node names present.
func TestTracePropagatesAcrossForwardedSuggest(t *testing.T) {
	a := startGossipNode(t, "node-a", nil, 60*time.Millisecond)
	b := startGossipNode(t, "node-b", nil, 60*time.Millisecond)
	if err := b.srv.JoinCluster(t.Context(), a.url); err != nil {
		t.Fatal(err)
	}

	gossipDatasets(t, a.srv)
	id := nameOwnedBy(t, "trace-2d", "node-b", "node-a", "node-b")
	spec := DesignerSpec{
		Dataset: "biased",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
		Config:  ConfigSpec{Mode: "2d"},
	}
	if err := a.srv.CreateDesigner(id, spec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "designer servable via node-a", func() bool {
		var got suggestionJSON
		return postJSON(t, a.url+"/v1/designers/"+id+"/suggest", suggestRequest{Weights: []float64{0.5, 0.5}}, &got) == http.StatusOK
	})
	// The warm-up request above may or may not have been forwarded (node-b
	// could still be activating); now that the path answers 200, send the
	// traced request.
	waitFor(t, 10*time.Second, "suggest forwarded to the owner", func() bool {
		return !a.srv.router.OwnedLocally(id)
	})

	const traceID = "e2e-trace-0042"
	// Weights the warm-up never asked: the owner must miss its memo cache and
	// run the kernel, so the merged trace shows the full stage ladder.
	body, err := json.Marshal(suggestRequest{Weights: []float64{0.7, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(context.Background(), "POST",
		a.url+"/v1/designers/"+id+"/suggest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for the trailer
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced suggest: HTTP %d", resp.StatusCode)
	}

	doc := getTraces(t, a.url, traceID)
	if doc.NodeID != "node-a" {
		t.Fatalf("asked node-a for traces, got %q", doc.NodeID)
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("want exactly 1 trace under %s at the entry node, got %d", traceID, len(doc.Traces))
	}
	tr := doc.Traces[0]
	if tr.Target != id {
		t.Fatalf("trace target = %q, want %q", tr.Target, id)
	}
	stages := map[string]bool{}
	nodes := map[string]bool{}
	for _, sp := range tr.Spans {
		stages[sp.Name] = true
		nodes[sp.Node] = true
	}
	for _, want := range []string{"decode", "forward", "cache", "kernel"} {
		if !stages[want] {
			t.Fatalf("trace misses stage %q; spans: %+v", want, tr.Spans)
		}
	}
	if !nodes["node-a"] || !nodes["node-b"] {
		t.Fatalf("trace must span both hops, saw nodes %v; spans: %+v", nodes, tr.Spans)
	}
	// The owner's hop recorded the same trace id on its own ring too.
	if remote := getTraces(t, b.url, traceID); len(remote.Traces) != 1 {
		t.Fatalf("owner node-b recorded %d traces under %s, want 1", len(remote.Traces), traceID)
	}
}

// /healthz must flip to 503 {"status":"draining"} the moment a drain begins,
// so load balancers and peer health probes stop routing fresh work there.
func TestHealthzReportsDraining(t *testing.T) {
	a := startGossipNode(t, "node-a", nil, 0)
	b := startGossipNode(t, "node-b", nil, 0)
	if err := b.srv.JoinCluster(t.Context(), a.url); err != nil {
		t.Fatal(err)
	}

	status := func(url string) (int, string) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body["status"]
	}

	if code, st := status(b.url); code != http.StatusOK || st != "ok" {
		t.Fatalf("pre-drain healthz: %d %q", code, st)
	}
	var out map[string]any
	if code := postJSON(t, b.url+"/cluster/leave", leaveRequest{ID: "node-b"}, &out); code != http.StatusOK {
		t.Fatalf("leave: HTTP %d (%v)", code, out)
	}
	if code, st := status(b.url); code != http.StatusServiceUnavailable || st != "draining" {
		t.Fatalf("post-drain healthz: %d %q, want 503 draining", code, st)
	}
	// The node that stayed keeps answering ok.
	if code, st := status(a.url); code != http.StatusOK || st != "ok" {
		t.Fatalf("surviving node healthz: %d %q", code, st)
	}
}

// The Prometheus exposition must carry the designer serving series, the
// cumulative latency histogram with a +Inf bar, the histogram-derived
// quantile gauges, and the cluster series — and the default (plain curl)
// /metrics must stay JSON with the new cluster section.
func TestMetricsPrometheusExposition(t *testing.T) {
	n := startGossipNode(t, "node-a", nil, 0)
	gossipDatasets(t, n.srv)
	spec := DesignerSpec{
		Dataset: "biased",
		Oracle:  OracleSpec{Kind: "min_share", Attr: "group", Group: "protected", TopFrac: 0.25, Share: 0.3},
		Config:  ConfigSpec{Mode: "2d"},
	}
	if err := n.srv.CreateDesigner("prom-d", spec); err != nil {
		t.Fatal(err)
	}
	if err := n.srv.WaitReady(t.Context(), "prom-d"); err != nil {
		t.Fatal(err)
	}
	var got suggestionJSON
	if code := postJSON(t, n.url+"/v1/designers/prom-d/suggest", suggestRequest{Weights: []float64{0.5, 0.5}}, &got); code != http.StatusOK {
		t.Fatalf("suggest: HTTP %d", code)
	}

	resp, err := http.Get(n.url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := string(raw)
	for _, want := range []string{
		`fairrank_designer_queries_total{designer="prom-d"} 1`,
		`fairrank_suggest_latency_seconds_bucket{designer="prom-d",le="+Inf"} 1`,
		`fairrank_suggest_latency_seconds_count{designer="prom-d"} 1`,
		`fairrank_suggest_latency_quantile_seconds{designer="prom-d",quantile="0.5"}`,
		`fairrank_suggest_latency_quantile_seconds{designer="prom-d",quantile="0.99"}`,
		"# TYPE fairrank_suggest_latency_seconds histogram",
		"# TYPE fairrank_gossip_rounds_total counter",
		"fairrank_handoff_pulls_total",
		"fairrank_ring_version",
		"fairrank_meta_entries",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket sanity: each successive le bar must be >= the last.
	var prev float64
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `fairrank_suggest_latency_seconds_bucket{designer="prom-d"`) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		prev = v
		seen++
	}
	if seen < 2 {
		t.Fatalf("expected a full bucket ladder, saw %d bars", seen)
	}

	// Default scrape (no format, no Accept) stays JSON and now carries the
	// cluster section.
	resp, err = http.Get(n.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Cluster *clusterMetricsJSON `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	if doc.Cluster == nil {
		t.Fatal("JSON /metrics misses the cluster section")
	}
}
